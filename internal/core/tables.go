package core

import (
	"sort"
	"strings"

	"syriafilter/internal/categorydb"
	"syriafilter/internal/geoip"
	"syriafilter/internal/stats"
	"syriafilter/internal/urlx"
)

// The result functions live on Engine so both full Analyzers and subset
// engines share them. Each reads only the modules its experiment id
// declares in experimentModules; asking an engine built without those
// modules panics with a message naming the missing module.

// --- Table 1 / Table 3 ---

// DatasetInfo is one Table 1 row.
type DatasetInfo struct {
	ID       DatasetID
	Requests uint64
}

// Table1 returns the dataset sizes.
func (e *Engine) Table1() []DatasetInfo {
	m := e.mDatasets("Table1")
	out := make([]DatasetInfo, 0, int(numDatasets))
	for id := DFull; id < numDatasets; id++ {
		out = append(out, DatasetInfo{ID: id, Requests: m.datasets[id].Total})
	}
	return out
}

// Table3 returns the class × exception counts for every dataset.
func (e *Engine) Table3() [4]ClassCounts { return e.mDatasets("Table3").datasets }

// Dataset returns one dataset's counts.
func (e *Engine) Dataset(id DatasetID) ClassCounts { return e.mDatasets("Dataset").datasets[id] }

// --- Table 4 ---

// DomainShare is a (domain, count, share) row.
type DomainShare struct {
	Domain string
	Count  uint64
	Share  float64 // of the class total
}

// sharesOf accepts anything with Top and Total — exact counters and
// sketch counters alike.
func sharesOf(c interface {
	Top(k int) []stats.Entry
	Total() uint64
}, k int) []DomainShare {
	top := c.Top(k)
	total := c.Total()
	out := make([]DomainShare, len(top))
	for i, e := range top {
		out[i] = DomainShare{Domain: e.Key, Count: e.Count, Share: frac(e.Count, total)}
	}
	return out
}

// TopDomains returns Table 4: the top-k allowed and censored domains.
func (e *Engine) TopDomains(k int) (allowed, censored []DomainShare) {
	m := e.mDomains("TopDomains")
	return sharesOf(m.allowed, k), sharesOf(m.censored, k)
}

// --- Table 5 ---

// Table5Window is the top censored domains in one time window.
type Table5Window struct {
	FromUnix, ToUnix int64
	Top              []DomainShare
}

// Table5 reports the top-k censored domains per window; windows are
// [from, from+width), stepped across [from, to). The paper uses Aug 3,
// 6:00–12:00 in 2-hour windows.
func (e *Engine) Table5(fromUnix, toUnix, widthSec int64, k int) []Table5Window {
	m := e.mTimeseries("Table5")
	var out []Table5Window
	for start := fromUnix; start < toUnix; start += widthSec {
		end := start + widthSec
		counts := stats.NewCounter()
		for hour := start / 3600; hour*3600 < end; hour++ {
			if hour*3600 < start {
				continue
			}
			for dom, n := range m.censHourDomains[hour] {
				counts.AddN(dom, n)
			}
		}
		out = append(out, Table5Window{FromUnix: start, ToUnix: end, Top: sharesOf(counts, k)})
	}
	return out
}

// --- Table 6 ---

// ProxySimilarity returns the 7×7 cosine-similarity matrix of censored
// domain profiles (Table 6), indexed by SG-42..48 order.
func (e *Engine) ProxySimilarity() [][]float64 {
	m := e.mProxies("ProxySimilarity")
	profiles := make([]map[string]uint64, len(m.censDomains))
	for i := range m.censDomains {
		profiles[i] = m.censDomains[i]
	}
	return stats.SimilarityMatrix(profiles)
}

// ProxyCategoryLabels reports which default cs-categories label each proxy
// stamps (§5.2: "none" on SG-43/48, "unavailable" elsewhere).
func (e *Engine) ProxyCategoryLabels() [7]string {
	var out [7]string
	for i, m := range e.mProxies("ProxyCategoryLabels").labels {
		best, bestN := "", uint64(0)
		for label, n := range m {
			if n > bestN {
				best, bestN = label, n
			}
		}
		out[i] = best
	}
	return out
}

// --- Table 7 ---

// RedirectHosts returns the top-k policy_redirect hosts.
func (e *Engine) RedirectHosts(k int) []DomainShare {
	return sharesOf(e.mRedirects("RedirectHosts").hosts, k)
}

// --- Tables 8 and 10: the §5.4 discovery algorithm ---

// SuspectedDomain is a Table 8 row: a domain with censored traffic and no
// allowed traffic.
type SuspectedDomain struct {
	Domain   string
	Censored uint64
	Allowed  uint64 // zero by construction
	Proxied  uint64
}

// Keyword is a Table 10 row.
type Keyword struct {
	Keyword  string
	Censored uint64
	Allowed  uint64 // zero by construction
	Proxied  uint64
}

// Discovery bundles the recovered string-filtering policy.
type Discovery struct {
	Domains  []SuspectedDomain
	Keywords []Keyword
}

// DiscoverFilters implements §5.4's iterative identification of censored
// strings, in two phases:
//
//  1. URL/domain phase: every registered domain with policy_denied
//     traffic and zero allowed traffic is suspected (the NC >> 1, NA = 0
//     criterion). A TLD whose every domain qualifies collapses into one
//     ".tld" entry (the paper's ".il").
//  2. Keyword phase: censored URLs *not* explained by phase 1 (and not
//     IP-literal hosts, which the IP analysis owns) are tokenized; a token
//     is a censored keyword if it appears at least minCount times in that
//     residue and never in allowed URLs.
//
// minCount guards against coincidental singletons (the paper's "NC >> 1").
// Keyword candidates must additionally hit at least three distinct
// registered domains: keyword rules are cross-domain by nature, while a
// token seen on one domain only is better explained by a URL rule.
func (e *Engine) DiscoverFilters(minCount uint64) Discovery {
	dm := e.mDomains("DiscoverFilters")
	tm := e.mTokens("DiscoverFilters")
	if minCount == 0 {
		minCount = 3
	}
	const minSpread = 3
	var d Discovery

	// Phase 0: TLD collapse. A TLD with censored traffic and no allowed
	// traffic anywhere is one blanket rule (the paper's ".il").
	blockedTLDs := make(map[string]bool)
	dm.tldCensored.Each(func(tld string, n uint64) {
		if tld != "" && n >= minCount && dm.tldAllowed.Count(tld) == 0 {
			blockedTLDs[tld] = true
			d.Domains = append(d.Domains, SuspectedDomain{Domain: "." + tld, Censored: n})
		}
	})

	// Phase 1: keywords, by the paper's iterative elimination over the
	// stored censored URLs: repeatedly take the most frequent cross-domain
	// token that never occurs in allowed URLs, record it, and remove every
	// censored URL it explains. Running keywords *before* domains mirrors
	// the paper's removal step and prevents keyword collateral (e.g. all
	// announces to tracker-proxy.furk.net) from masquerading as
	// domain-blocking.
	type residueEntry struct {
		url    string
		domain string
		host   string
		tokens []string
	}
	var residue []residueEntry
	for _, cu := range tm.censored() {
		if blockedTLDs[urlx.TLD(cu.Host)] || urlx.IsIPv4(cu.Host) {
			continue
		}
		residue = append(residue, residueEntry{
			url:    strings.ToLower(cu.URL),
			domain: cu.Domain,
			host:   cu.Host,
			tokens: TokenizeURL(cu.Host, pathOf(cu.URL, cu.Host), queryOf(cu.URL)),
		})
	}
	for rounds := 0; rounds < 64; rounds++ {
		counts := stats.NewCounter()
		domainsOf := map[string]map[string]struct{}{}
		for _, re := range residue {
			seen := map[string]bool{}
			for _, tok := range re.tokens {
				if seen[tok] {
					continue
				}
				seen[tok] = true
				counts.Add(tok)
				set := domainsOf[tok]
				if set == nil {
					set = map[string]struct{}{}
					domainsOf[tok] = set
				}
				set[re.domain] = struct{}{}
			}
		}
		best := ""
		var bestN uint64
		counts.Each(func(tok string, n uint64) {
			if n < minCount || tm.allowed.counter.Count(tok) != 0 {
				return
			}
			if len(domainsOf[tok]) < minSpread {
				return
			}
			if n > bestN || (n == bestN && tok < best) {
				best, bestN = tok, n
			}
		})
		if best == "" {
			break
		}
		d.Keywords = append(d.Keywords, Keyword{
			Keyword:  best,
			Censored: bestN,
			Proxied:  tm.proxied.counter.Count(best),
		})
		keep := residue[:0]
		for _, re := range residue {
			if !strings.Contains(re.url, best) {
				keep = append(keep, re)
			}
		}
		residue = keep
	}

	// Phase 2: URL rules from the unexplained residue — registered
	// domains, then single hosts (messenger.live.com-style entries whose
	// registered domain still has allowed traffic). Counts come from the
	// residue so keyword-explained requests are not re-attributed.
	domCounts := stats.NewCounter()
	hostCounts := stats.NewCounter()
	for _, re := range residue {
		domCounts.Add(re.domain)
		hostCounts.Add(re.host)
	}
	suspected := make(map[string]bool)
	domCounts.Each(func(dom string, n uint64) {
		if n < minCount || dm.allowed.Count(dom) != 0 {
			return
		}
		suspected[dom] = true
		d.Domains = append(d.Domains, SuspectedDomain{
			Domain:   dom,
			Censored: dm.censoredDeny.Count(dom),
			Proxied:  dm.proxied.Count(dom),
		})
	})
	hostCounts.Each(func(host string, n uint64) {
		if n < minCount || suspected[urlx.RegisteredDomain(host)] {
			return
		}
		if dm.hostAllowed.Count(host) != 0 {
			return
		}
		d.Domains = append(d.Domains, SuspectedDomain{
			Domain:   host,
			Censored: dm.hostCensoredDeny.Count(host),
		})
	})
	sort.Slice(d.Domains, func(i, j int) bool {
		if d.Domains[i].Censored != d.Domains[j].Censored {
			return d.Domains[i].Censored > d.Domains[j].Censored
		}
		return d.Domains[i].Domain < d.Domains[j].Domain
	})
	return d
}

func pathOf(url, host string) string {
	rest := strings.TrimPrefix(url, host)
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		return rest[:i]
	}
	return rest
}

func queryOf(url string) string {
	if i := strings.IndexByte(url, '?'); i >= 0 {
		return url[i+1:]
	}
	return ""
}

// --- Table 9 ---

// CategoryDomains is a Table 9 row: one category's slice of the suspected
// domains and their censored request volume.
type CategoryDomains struct {
	Category string
	Domains  int
	Requests uint64
}

// Table9 categorizes the suspected (URL-blacklisted) domains.
func (e *Engine) Table9(d Discovery) []CategoryDomains {
	agg := map[string]*CategoryDomains{}
	for _, sd := range d.Domains {
		cat := string(e.opt.Categories.Classify(strings.TrimPrefix(sd.Domain, ".")))
		if strings.HasPrefix(sd.Domain, ".") {
			cat = string(categorydb.CatNA) // a whole TLD has no single category
		}
		row := agg[cat]
		if row == nil {
			row = &CategoryDomains{Category: cat}
			agg[cat] = row
		}
		row.Domains++
		row.Requests += sd.Censored
	}
	out := make([]CategoryDomains, 0, len(agg))
	for _, row := range agg {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// --- Table 11 ---

// CountryRatio is a Table 11 row.
type CountryRatio struct {
	Country  string
	Censored uint64
	Allowed  uint64
	Ratio    float64
}

// CountryRatios computes per-country censorship ratios over IP-literal
// destinations, descending by ratio.
func (e *Engine) CountryRatios() []CountryRatio {
	m := e.mCountries("CountryRatios")
	all := map[string]*CountryRatio{}
	m.censored.Each(func(c string, n uint64) {
		all[c] = &CountryRatio{Country: c, Censored: n}
	})
	m.allowed.Each(func(c string, n uint64) {
		row := all[c]
		if row == nil {
			row = &CountryRatio{Country: c}
			all[c] = row
		}
		row.Allowed = n
	})
	out := make([]CountryRatio, 0, len(all))
	for _, row := range all {
		if row.Censored+row.Allowed > 0 {
			row.Ratio = float64(row.Censored) / float64(row.Censored+row.Allowed)
		}
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio > out[j].Ratio
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// --- Table 12 ---

// SubnetStat is a Table 12 row.
type SubnetStat struct {
	Subnet                    string
	CensoredReqs, CensoredIPs uint64
	AllowedReqs, AllowedIPs   uint64
	ProxiedReqs, ProxiedIPs   uint64
}

// IsraeliSubnets reports per-subnet censorship over the Israeli address
// ranges, descending by censored requests.
func (e *Engine) IsraeliSubnets() []SubnetStat {
	m := e.mSubnets("IsraeliSubnets")
	out := make([]SubnetStat, 0, len(m.subnets))
	for subnet, st := range m.subnets {
		out = append(out, SubnetStat{
			Subnet:       subnet,
			CensoredReqs: st.Censored, CensoredIPs: st.CensoredIPCount(),
			AllowedReqs: st.Allowed, AllowedIPs: st.AllowedIPCount(),
			ProxiedReqs: st.Proxied, ProxiedIPs: st.ProxiedIPCount(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CensoredReqs != out[j].CensoredReqs {
			return out[i].CensoredReqs > out[j].CensoredReqs
		}
		return out[i].Subnet < out[j].Subnet
	})
	return out
}

// PaperSubnets returns the Table 12 subnet labels in paper order, for
// harnesses that want the fixed row set.
func PaperSubnets() []string {
	out := append([]string(nil), geoip.IsraeliSubnets...)
	return out
}

// --- Table 13 ---

// OSNStat is a Table 13 row.
type OSNStat struct {
	Domain                     string
	Censored, Allowed, Proxied uint64
}

// SocialNetworks reports censorship across the §6 watchlist, descending
// by censored count.
func (e *Engine) SocialNetworks() []OSNStat {
	m := e.mOSN("SocialNetworks")
	out := make([]OSNStat, 0, len(m.osn))
	for dom, ts := range m.osn {
		out = append(out, OSNStat{Domain: dom, Censored: ts.Censored, Allowed: ts.Allowed, Proxied: ts.Proxied})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Censored != out[j].Censored {
			return out[i].Censored > out[j].Censored
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}

// --- Table 14 ---

// FBPage is a Table 14 row.
type FBPage struct {
	Page                       string
	Censored, Allowed, Proxied uint64
}

// FacebookPages lists the custom-category ("Blocked sites") Facebook
// pages, descending by censored count.
func (e *Engine) FacebookPages() []FBPage {
	m := e.mFacebook("FacebookPages")
	out := []FBPage{}
	for path, ps := range m.pages {
		if !ps.CustomCategory {
			continue
		}
		out = append(out, FBPage{
			Page:     strings.TrimPrefix(path, "/"),
			Censored: ps.Censored, Allowed: ps.Allowed, Proxied: ps.Proxied,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Censored != out[j].Censored {
			return out[i].Censored > out[j].Censored
		}
		return out[i].Page < out[j].Page
	})
	return out
}

// --- Table 15 ---

// PluginStat is a Table 15 row.
type PluginStat struct {
	Path                       string
	Censored, Allowed, Proxied uint64
	// ShareOfFBCensored is the element's share of all censored traffic on
	// the facebook.com domain.
	ShareOfFBCensored float64
}

// SocialPlugins reports the top-k censored facebook.com platform elements.
func (e *Engine) SocialPlugins(k int) []PluginStat {
	m := e.mFacebook("SocialPlugins")
	out := []PluginStat{}
	for path, ts := range m.paths {
		if ts.Censored == 0 {
			continue
		}
		out = append(out, PluginStat{
			Path:     path,
			Censored: ts.Censored, Allowed: ts.Allowed, Proxied: ts.Proxied,
			ShareOfFBCensored: frac(ts.Censored, m.cens),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Censored != out[j].Censored {
			return out[i].Censored > out[j].Censored
		}
		return out[i].Path < out[j].Path
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

func frac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
