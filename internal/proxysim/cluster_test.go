package proxysim

import (
	"testing"
	"time"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/synth"
	"syriafilter/internal/torsim"
)

func augTime(day, hour int) int64 {
	return time.Date(2011, 8, day, hour, 0, 0, 0, time.UTC).Unix()
}

func julyTime(day, hour int) int64 {
	return time.Date(2011, 7, day, hour, 0, 0, 0, time.UTC).Unix()
}

func testReq(host, path, query string, t int64) *synth.Request {
	return &synth.Request{
		Time: t, ClientIP: 0x1f400001, UserAgent: "ua",
		Method: "GET", Scheme: "http", Host: host, Port: 80,
		Path: path, Query: query,
	}
}

func TestProcessCensored(t *testing.T) {
	c := NewCluster(Config{Seed: 1})
	var rec logfmt.Record
	c.Process(testReq("www.metacafe.com", "/watch/123/", "", augTime(3, 10)), &rec)
	if rec.Exception != logfmt.ExPolicyDenied || rec.Filter == logfmt.Observed {
		t.Errorf("metacafe: %+v", rec)
	}
	if rec.Status != 403 || rec.SAction != "TCP_DENIED" {
		t.Errorf("deny rendering: status=%d action=%s", rec.Status, rec.SAction)
	}
	if got := rec.Proxy(); got != 48 && got != 45 {
		t.Errorf("metacafe routed to SG-%d, want 48 (or occasionally 45)", got)
	}
}

func TestProcessAllowed(t *testing.T) {
	c := NewCluster(Config{Seed: 1, Errors: ErrorModel{TCPError: -1}}) // negative: no errors ever drawn
	var rec logfmt.Record
	c.Process(testReq("www.example.com", "/page", "", augTime(2, 12)), &rec)
	if rec.Exception != logfmt.ExNone {
		t.Errorf("exception = %v", rec.Exception)
	}
	if rec.Filter == logfmt.Denied {
		t.Errorf("filter = %v", rec.Filter)
	}
	if rec.Status != 200 {
		t.Errorf("status = %d", rec.Status)
	}
}

func TestProcessRedirectCategories(t *testing.T) {
	c := NewCluster(Config{Seed: 2})
	var rec logfmt.Record
	// Targeted Facebook page: custom category label.
	for i := 0; i < 50; i++ { // sample until we see both label families
		c.Process(testReq("www.facebook.com", "/Syrian.Revolution", "ref=ts", augTime(3, 9)), &rec)
		if rec.Exception != logfmt.ExPolicyRedirect {
			t.Fatalf("page redirect: %+v", rec)
		}
		switch rec.Categories {
		case "Blocked sites", "Blocked sites; unavailable":
		default:
			t.Fatalf("custom category label = %q", rec.Categories)
		}
	}
	// Redirect host (Table 7): keeps the default label.
	c.Process(testReq("upload.youtube.com", "/upload/rupio", "id=1", augTime(3, 9)), &rec)
	if rec.Exception != logfmt.ExPolicyRedirect {
		t.Fatalf("upload redirect: %+v", rec)
	}
	if rec.Categories == "Blocked sites" || rec.Categories == "Blocked sites; unavailable" {
		t.Errorf("redirect host should keep default label, got %q", rec.Categories)
	}
	if rec.SAction != "tcp_policy_redirect" {
		t.Errorf("SAction = %q", rec.SAction)
	}
}

func TestJulyRoutesToSG42Only(t *testing.T) {
	c := NewCluster(Config{Seed: 3})
	var rec logfmt.Record
	for i := 0; i < 200; i++ {
		req := testReq("www.example.com", "/", "", julyTime(22, i%24))
		req.ClientIP = uint32(i) * 977
		c.Process(req, &rec)
		if rec.Proxy() != 42 {
			t.Fatalf("July request on SG-%d", rec.Proxy())
		}
		if rec.ClientIP == "0.0.0.0" || rec.ClientIP == "" {
			t.Fatalf("Duser window should carry hashed IPs, got %q", rec.ClientIP)
		}
	}
	// July 31 is SG-42 but outside the Duser hash window.
	c.Process(testReq("www.example.com", "/", "", julyTime(31, 10)), &rec)
	if rec.Proxy() != 42 || rec.ClientIP != "0.0.0.0" {
		t.Errorf("July 31: proxy=%d ip=%q", rec.Proxy(), rec.ClientIP)
	}
}

func TestAugustSpreadsAcrossProxies(t *testing.T) {
	c := NewCluster(Config{Seed: 4})
	var rec logfmt.Record
	seen := map[int]int{}
	for i := 0; i < 2000; i++ {
		req := testReq("www.example.com", "/", "", augTime(2, i%24))
		req.ClientIP = uint32(i) * 7919
		req.Host = "www.example.com"
		c.Process(req, &rec)
		seen[rec.Proxy()]++
		if rec.ClientIP != "0.0.0.0" {
			t.Fatalf("August IPs should be zeroed, got %q", rec.ClientIP)
		}
	}
	if len(seen) != logfmt.NumProxies {
		t.Fatalf("only %d proxies used: %v", len(seen), seen)
	}
	for sg, n := range seen {
		if n < 100 {
			t.Errorf("proxy SG-%d underused: %d", sg, n)
		}
	}
}

func TestCategoryLabelsPerProxy(t *testing.T) {
	c := NewCluster(Config{Seed: 5})
	var rec logfmt.Record
	labels := map[int]string{}
	for i := 0; i < 3000; i++ {
		req := testReq("site.example", "/", "", augTime(2, i%24))
		req.ClientIP = uint32(i) * 104729
		c.Process(req, &rec)
		labels[rec.Proxy()] = rec.Categories
	}
	for sg, label := range labels {
		want := "unavailable"
		if sg == 43 || sg == 48 {
			want = "none"
		}
		if label != want {
			t.Errorf("SG-%d default label = %q, want %q", sg, label, want)
		}
	}
}

func TestErrorModelShares(t *testing.T) {
	c := NewCluster(Config{Seed: 6})
	var rec logfmt.Record
	var errors, total int
	perEx := map[logfmt.ExceptionID]int{}
	for i := 0; i < 200000; i++ {
		req := testReq("benign.example", "/", "", augTime(2, i%24))
		req.ClientIP = uint32(i)
		c.Process(req, &rec)
		total++
		if rec.Exception.IsError() {
			errors++
			perEx[rec.Exception]++
		}
	}
	share := float64(errors) / float64(total)
	if share < 0.04 || share > 0.07 {
		t.Errorf("error share = %v, want ~0.053", share)
	}
	if perEx[logfmt.ExTCPError] < perEx[logfmt.ExInternalError] {
		t.Errorf("tcp_error (%d) should dominate internal_error (%d)",
			perEx[logfmt.ExTCPError], perEx[logfmt.ExInternalError])
	}
}

func TestProxiedRate(t *testing.T) {
	c := NewCluster(Config{Seed: 7})
	var rec logfmt.Record
	proxied := 0
	const n = 100000
	for i := 0; i < n; i++ {
		req := testReq("benign.example", "/", "", augTime(2, i%24))
		req.ClientIP = uint32(i)
		c.Process(req, &rec)
		if rec.Filter == logfmt.Proxied {
			proxied++
		}
	}
	rate := float64(proxied) / n
	if rate < 0.003 || rate > 0.007 {
		t.Errorf("proxied rate = %v, want ~0.0047", rate)
	}
}

func TestTorBlockingIsolatedToSG44(t *testing.T) {
	cons := torsim.NewConsensus(9, 300)
	c := NewCluster(Config{Seed: 9, Consensus: cons})
	var rec logfmt.Record
	censoredByProxy := map[int]int{}
	torTotal := 0
	for i := 0; i < 60000; i++ {
		relay := cons.Relay(i % cons.Len())
		req := &synth.Request{
			Time: augTime(1+(i%6), i%24), ClientIP: uint32(i) * 31,
			Method: "CONNECT", Scheme: "tcp",
			Host: relay.Host(), Port: relay.ORPort,
		}
		c.Process(req, &rec)
		torTotal++
		if rec.IsCensored() {
			censoredByProxy[rec.Proxy()]++
		}
	}
	censored := 0
	for _, n := range censoredByProxy {
		censored += n
	}
	if censored == 0 {
		t.Fatal("no Tor traffic censored at all")
	}
	if frac := float64(censoredByProxy[44]) / float64(censored); frac < 0.95 {
		t.Errorf("SG-44 share of censored Tor = %v, want ~0.999", frac)
	}
	// Torhttp (dir fetches) must never be censored.
	dirCensored := 0
	for i := 0; i < 10000; i++ {
		relay := cons.Relay(i % cons.Len())
		if relay.DirPort == 0 {
			continue
		}
		req := &synth.Request{
			Time: augTime(1+(i%6), i%24), ClientIP: uint32(i) * 37,
			Method: "GET", Scheme: "http",
			Host: relay.Host(), Port: relay.DirPort,
			Path: "/tor/server/all.z",
		}
		c.Process(req, &rec)
		if rec.IsCensored() {
			dirCensored++
		}
	}
	if dirCensored != 0 {
		t.Errorf("Torhttp censored %d times; paper: only Toronion is blocked", dirCensored)
	}
}

func TestCountsConsistency(t *testing.T) {
	c := NewCluster(Config{Seed: 10})
	var rec logfmt.Record
	for i := 0; i < 5000; i++ {
		host := "ok.example"
		if i%50 == 0 {
			host = "www.metacafe.com"
		}
		req := testReq(host, "/", "", augTime(2, i%24))
		req.ClientIP = uint32(i)
		c.Process(req, &rec)
	}
	got := c.Counts()
	if got.Total != 5000 {
		t.Errorf("total = %d", got.Total)
	}
	if got.Allowed+got.Censored+got.Errors != got.Total {
		t.Errorf("classes don't add up: %+v", got)
	}
	if got.Censored < 80 {
		t.Errorf("censored = %d, want ~100", got.Censored)
	}
}

func TestDefaultEngineIsPaperPolicy(t *testing.T) {
	c := NewCluster(Config{Seed: 11})
	var rec logfmt.Record
	c.Process(testReq("x.il", "/", "", augTime(2, 3)), &rec)
	if !rec.IsCensored() {
		t.Error("default cluster engine should block .il")
	}
}

func TestPolicyDecisionIgnoresErrors(t *testing.T) {
	// Censored requests never carry network-error exceptions.
	em := DefaultErrorModel()
	em.TCPError = 0.9 // absurd error rate
	c := NewCluster(Config{Seed: 12, Errors: em})
	var rec logfmt.Record
	for i := 0; i < 500; i++ {
		req := testReq("skype.com", "/go", "", augTime(2, i%24))
		req.ClientIP = uint32(i)
		c.Process(req, &rec)
		if !rec.IsCensored() {
			t.Fatalf("censored request got %v", rec.Exception)
		}
	}
}

func BenchmarkClusterProcess(b *testing.B) {
	c := NewCluster(Config{Seed: 1})
	req := testReq("www.facebook.com", "/plugins/like.php", "href=x&fb_proxy=1", augTime(3, 9))
	var rec logfmt.Record
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Process(req, &rec)
	}
}
