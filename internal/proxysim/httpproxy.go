package proxysim

import (
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/policy"
	"syriafilter/internal/urlx"
)

// Server is a live HTTP filtering proxy driven by the same policy engine
// as the offline simulator: an explicit proxy that handles absolute-URI
// requests and CONNECT tunnels, returning 403 for policy_denied and 302
// for policy_redirect, and forwarding allowed traffic upstream. Every
// decision is reported to an optional LogFunc as a logfmt.Record, so the
// live proxy produces the same corpus format as the simulator.
//
// It exists to demonstrate the filtering semantics over real sockets (see
// examples/liveproxy); it is not a hardened production proxy.
type Server struct {
	// Engine decides each request. Required.
	Engine *policy.Engine
	// SG is the proxy identity stamped into records (default 42).
	SG int
	// RedirectURL is where policy_redirect sends clients (the paper could
	// not observe the real destination; it was hosted inside Syria).
	RedirectURL string
	// LogFunc, when set, receives one record per processed request.
	LogFunc func(*logfmt.Record)
	// Transport performs upstream requests (default http.DefaultTransport).
	Transport http.RoundTripper
	// Dial opens CONNECT tunnels (default net.Dial with 5s timeout).
	Dial func(network, addr string) (net.Conn, error)
	// Now supplies record timestamps (default time.Now). Injectable for
	// deterministic tests.
	Now func() time.Time

	mu     sync.Mutex
	counts Counts
}

// Counts returns processing totals.
func (s *Server) Counts() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodConnect {
		s.serveConnect(w, r)
		return
	}
	s.serveHTTP(w, r)
}

func (s *Server) evaluate(r *http.Request) (policy.Verdict, *logfmt.Record) {
	host, port := urlx.SplitHostPort(r.Host)
	if r.URL.Host != "" {
		host, port = urlx.SplitHostPort(r.URL.Host)
	}
	scheme := r.URL.Scheme
	if scheme == "" {
		scheme = "http"
	}
	if port == 0 {
		port = urlx.DefaultPort(scheme)
	}
	if r.Method == http.MethodConnect {
		scheme = "tcp"
	}
	preq := policy.Request{
		Host:   strings.ToLower(host),
		Port:   port,
		Path:   r.URL.Path,
		Query:  r.URL.RawQuery,
		Scheme: scheme,
		Method: r.Method,
	}
	v := s.Engine.Evaluate(&preq)

	now := time.Now
	if s.Now != nil {
		now = s.Now
	}
	sg := s.SG
	if sg == 0 {
		sg = 42
	}
	rec := &logfmt.Record{
		Time:      now().Unix(),
		ClientIP:  clientAddr(r),
		Method:    r.Method,
		Scheme:    scheme,
		Host:      preq.Host,
		Port:      port,
		Path:      r.URL.Path,
		Query:     r.URL.RawQuery,
		Ext:       urlx.PathExt(r.URL.Path),
		UserAgent: r.UserAgent(),
	}
	rec.SetProxy(sg)
	rec.Categories = defaultCategoryLabel(sg)
	return v, rec
}

func (s *Server) serveHTTP(w http.ResponseWriter, r *http.Request) {
	v, rec := s.evaluate(r)
	switch v.Action {
	case policy.Deny:
		rec.Exception = logfmt.ExPolicyDenied
		rec.Filter = logfmt.Denied
		rec.SAction = "TCP_DENIED"
		rec.Status = http.StatusForbidden
		s.log(rec, v)
		w.Header().Set("X-Exception-Id", "policy_denied")
		http.Error(w, "Access Denied (content filtered)", http.StatusForbidden)
		return
	case policy.Redirect:
		rec.Exception = logfmt.ExPolicyRedirect
		rec.Filter = logfmt.Denied
		rec.SAction = "tcp_policy_redirect"
		rec.Status = http.StatusFound
		if v.Kind == policy.KindCategory && isPageRule(v.Match, rec.Host) {
			rec.Categories = customCategoryLabel(42)
		}
		s.log(rec, v)
		target := s.RedirectURL
		if target == "" {
			target = "http://redirect.invalid/"
		}
		w.Header().Set("X-Exception-Id", "policy_redirect")
		http.Redirect(w, r, target, http.StatusFound)
		return
	}

	// Forward upstream.
	tr := s.Transport
	if tr == nil {
		tr = http.DefaultTransport
	}
	out := r.Clone(r.Context())
	out.RequestURI = ""
	if out.URL.Scheme == "" {
		out.URL.Scheme = "http"
	}
	if out.URL.Host == "" {
		out.URL.Host = r.Host
	}
	resp, err := tr.RoundTrip(out)
	if err != nil {
		rec.Exception = logfmt.ExTCPError
		rec.Filter = logfmt.Denied
		rec.SAction = "TCP_ERR_MISS"
		rec.Status = http.StatusBadGateway
		s.log(rec, v)
		http.Error(w, "upstream error: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	rec.Exception = logfmt.ExNone
	rec.Filter = logfmt.Observed
	rec.SAction = "TCP_NC_MISS"
	rec.Status = uint16(resp.StatusCode)
	rec.ContentType = resp.Header.Get("Content-Type")
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	n, _ := io.Copy(w, resp.Body)
	rec.ScBytes = uint32(n)
	s.log(rec, v)
}

func (s *Server) serveConnect(w http.ResponseWriter, r *http.Request) {
	v, rec := s.evaluate(r)
	if v.Action != policy.Allow {
		rec.Exception = logfmt.ExPolicyDenied
		if v.Action == policy.Redirect {
			rec.Exception = logfmt.ExPolicyRedirect
		}
		rec.Filter = logfmt.Denied
		rec.SAction = "TCP_DENIED"
		rec.Status = http.StatusForbidden
		s.log(rec, v)
		http.Error(w, "CONNECT denied (content filtered)", http.StatusForbidden)
		return
	}

	dial := s.Dial
	if dial == nil {
		dial = func(network, addr string) (net.Conn, error) {
			return net.DialTimeout(network, addr, 5*time.Second)
		}
	}
	upstream, err := dial("tcp", r.Host)
	if err != nil {
		rec.Exception = logfmt.ExTCPError
		rec.Filter = logfmt.Denied
		rec.SAction = "TCP_ERR_MISS"
		rec.Status = http.StatusBadGateway
		s.log(rec, v)
		http.Error(w, "dial failed: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer upstream.Close()

	hj, ok := w.(http.Hijacker)
	if !ok {
		rec.Exception = logfmt.ExInternalError
		rec.Filter = logfmt.Denied
		s.log(rec, v)
		http.Error(w, "hijacking unsupported", http.StatusInternalServerError)
		return
	}
	client, buf, err := hj.Hijack()
	if err != nil {
		rec.Exception = logfmt.ExInternalError
		rec.Filter = logfmt.Denied
		s.log(rec, v)
		return
	}
	defer client.Close()

	rec.Exception = logfmt.ExNone
	rec.Filter = logfmt.Observed
	rec.SAction = "TCP_TUNNELED"
	rec.Status = 200
	s.log(rec, v)

	_, _ = buf.WriteString("HTTP/1.1 200 Connection Established\r\n\r\n")
	_ = buf.Flush()

	done := make(chan struct{}, 2)
	go func() { _, _ = io.Copy(upstream, client); done <- struct{}{} }()
	go func() { _, _ = io.Copy(client, upstream); done <- struct{}{} }()
	<-done
}

func (s *Server) log(rec *logfmt.Record, v policy.Verdict) {
	s.mu.Lock()
	s.counts.Total++
	switch {
	case rec.Exception.IsCensorship():
		s.counts.Censored++
		if rec.Exception == logfmt.ExPolicyRedirect {
			s.counts.Redirect++
		}
	case rec.Exception.IsError():
		s.counts.Errors++
	default:
		s.counts.Allowed++
	}
	s.mu.Unlock()
	if s.LogFunc != nil {
		s.LogFunc(rec)
	}
}

func clientAddr(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
