package proxysim

import (
	"testing"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/policy"
	"syriafilter/internal/torsim"
)

// TorBlockDuty scales the fraction of hours SG-44 blocks aggressively.
func TestTorBlockDutyKnob(t *testing.T) {
	cons := torsim.NewConsensus(21, 400)
	countCensored := func(duty float64) int {
		c := NewCluster(Config{Seed: 21, Consensus: cons, TorBlockDuty: duty})
		var rec logfmt.Record
		censored := 0
		for i := 0; i < 30000; i++ {
			relay := cons.Relay(i % cons.Len())
			req := testReq(relay.Host(), "", "", augTime(1+(i%6), i%24))
			req.Method = "CONNECT"
			req.Scheme = "tcp"
			req.Port = relay.ORPort
			req.ClientIP = uint32(i) * 53
			c.Process(req, &rec)
			if rec.IsCensored() {
				censored++
			}
		}
		return censored
	}
	low := countCensored(0.1)
	high := countCensored(0.8)
	if high <= low*2 {
		t.Errorf("duty knob ineffective: duty 0.1 -> %d, duty 0.8 -> %d", low, high)
	}
}

// Without a consensus the cluster never censors Tor endpoints.
func TestNoConsensusNoTorBlocking(t *testing.T) {
	cons := torsim.NewConsensus(22, 200)
	c := NewCluster(Config{Seed: 22}) // no consensus wired in
	var rec logfmt.Record
	for i := 0; i < 20000; i++ {
		relay := cons.Relay(i % cons.Len())
		req := testReq(relay.Host(), "", "", augTime(2, i%24))
		req.Method = "CONNECT"
		req.Scheme = "tcp"
		req.Port = relay.ORPort
		req.ClientIP = uint32(i)
		c.Process(req, &rec)
		if rec.IsCensored() {
			t.Fatalf("request %d censored without consensus: %+v", i, rec)
		}
	}
}

// A custom engine fully replaces the default policy.
func TestCustomEngineRespected(t *testing.T) {
	c := NewCluster(Config{Seed: 23, Engine: emptyEngine()})
	var rec logfmt.Record
	c.Process(testReq("www.metacafe.com", "/watch/1/", "", augTime(2, 10)), &rec)
	if rec.IsCensored() {
		t.Error("empty policy censored metacafe")
	}
}

// Custom error model: zeroing the probabilities removes network errors.
func TestZeroErrorModel(t *testing.T) {
	em := ErrorModel{TCPError: -1} // non-zero struct so defaults don't kick in
	c := NewCluster(Config{Seed: 24, Errors: em})
	var rec logfmt.Record
	for i := 0; i < 20000; i++ {
		req := testReq("ok.example", "/", "", augTime(2, i%24))
		req.ClientIP = uint32(i)
		c.Process(req, &rec)
		if rec.Exception.IsError() {
			t.Fatalf("error emitted under zeroed model: %v", rec.Exception)
		}
	}
}

// Redirect records carry the tcp_policy_redirect s-action and 302 status
// the paper reads from the s-action field (§5.3).
func TestRedirectRendering(t *testing.T) {
	c := NewCluster(Config{Seed: 25})
	var rec logfmt.Record
	c.Process(testReq("sharek.aljazeera.net", "/upload", "", augTime(2, 10)), &rec)
	if rec.Exception != logfmt.ExPolicyRedirect || rec.SAction != "tcp_policy_redirect" || rec.Status != 302 {
		t.Errorf("redirect record: %+v", rec)
	}
}

// Deterministic replays: identical seed and input stream give identical
// log records.
func TestClusterDeterminism(t *testing.T) {
	run := func() []logfmt.Record {
		c := NewCluster(Config{Seed: 26})
		out := make([]logfmt.Record, 0, 500)
		var rec logfmt.Record
		for i := 0; i < 500; i++ {
			host := "a.example"
			if i%17 == 0 {
				host = "skype.com"
			}
			req := testReq(host, "/", "", augTime(2, i%24))
			req.ClientIP = uint32(i)
			c.Process(req, &rec)
			out = append(out, rec)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between same-seed runs", i)
		}
	}
}

func emptyEngine() *policy.Engine { return policy.Compile(&policy.Ruleset{}) }
