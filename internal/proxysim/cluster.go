// Package proxysim simulates the Blue Coat SG-9000 deployment described in
// the paper: seven transparent filtering proxies (SG-42…SG-48) at the STE
// backbone, each classifying every request as OBSERVED / PROXIED / DENIED
// and stamping an x-exception-id (§3.2–3.3).
//
// Cluster is the offline simulator: it takes synthetic client requests,
// routes them to a proxy (uniform load with the domain-affinity redirection
// inferred in §5.2: metacafe/skype traffic concentrates on SG-48), applies
// the policy engine, the network-error model of Table 3, the cache
// (PROXIED) behaviour, the per-proxy configuration differences (the
// "none" vs "unavailable" category labels of §5.2), and SG-44's
// intermittent Tor blocking (§7.1) — then renders logfmt Records.
//
// Server (httpproxy.go) is the live counterpart: an actual net/http
// filtering proxy driven by the same engine.
package proxysim

import (
	"fmt"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/policy"
	"syriafilter/internal/stats"
	"syriafilter/internal/synth"
	"syriafilter/internal/torsim"
	"syriafilter/internal/urlx"
)

// ErrorModel gives the probability of each network-error exception,
// conditional on the request not being censored. Defaults reproduce
// Table 3's denied-traffic breakdown.
type ErrorModel struct {
	TCPError       float64
	InternalError  float64
	InvalidRequest float64
	UnsupProto     float64
	DNSUnresolved  float64
	DNSFailure     float64
	UnsupEncoding  float64
	InvalidResp    float64
}

// DefaultErrorModel matches Table 3 (shares of total traffic).
func DefaultErrorModel() ErrorModel {
	return ErrorModel{
		TCPError:       0.0286,
		InternalError:  0.0196,
		InvalidRequest: 0.0036,
		UnsupProto:     0.0010,
		DNSUnresolved:  0.0002,
		DNSFailure:     0.0001,
		UnsupEncoding:  0.0000004,
		InvalidResp:    0.00000001,
	}
}

// Config parameterizes a Cluster.
type Config struct {
	Seed   uint64
	Engine *policy.Engine
	// Consensus enables Tor recognition; without it no Tor-specific
	// blocking happens (the policy engine has no Tor rules).
	Consensus *torsim.Consensus
	Errors    ErrorModel
	// ProxiedRate is the cache-hit (PROXIED) share; default 0.0047.
	ProxiedRate float64
	// TorBlockDuty is the fraction of hours in which SG-44 aggressively
	// censors Tor OR-traffic; default 0.33 (Fig. 9's alternation).
	TorBlockDuty float64
}

// Cluster is the offline seven-proxy simulator. Not safe for concurrent
// use; shard the input stream and give each worker its own Cluster with a
// forked seed if parallel generation is needed.
type Cluster struct {
	cfg  Config
	r    *stats.Rand
	errs []struct {
		p  float64
		ex logfmt.ExceptionID
	}
	counts Counts
}

// Counts aggregates what the cluster has processed, for calibration tests.
type Counts struct {
	Total    uint64
	Allowed  uint64
	Censored uint64
	Errors   uint64
	Proxied  uint64
	Redirect uint64
}

// NewCluster builds a cluster simulator.
func NewCluster(cfg Config) *Cluster {
	if cfg.Engine == nil {
		cfg.Engine = policy.Compile(policy.PaperRuleset())
	}
	zero := ErrorModel{}
	if cfg.Errors == zero {
		cfg.Errors = DefaultErrorModel()
	}
	if cfg.ProxiedRate == 0 {
		cfg.ProxiedRate = 0.0047
	}
	if cfg.TorBlockDuty == 0 {
		cfg.TorBlockDuty = 0.33
	}
	c := &Cluster{cfg: cfg, r: stats.NewRand(cfg.Seed ^ 0x534721)}
	em := cfg.Errors
	c.errs = []struct {
		p  float64
		ex logfmt.ExceptionID
	}{
		{em.TCPError, logfmt.ExTCPError},
		{em.InternalError, logfmt.ExInternalError},
		{em.InvalidRequest, logfmt.ExInvalidRequest},
		{em.UnsupProto, logfmt.ExUnsupportedProtocol},
		{em.DNSUnresolved, logfmt.ExDNSUnresolvedHostname},
		{em.DNSFailure, logfmt.ExDNSServerFailure},
		{em.UnsupEncoding, logfmt.ExUnsupportedEncoding},
		{em.InvalidResp, logfmt.ExInvalidResponse},
	}
	return c
}

// Counts returns the processing totals so far.
func (c *Cluster) Counts() Counts { return c.counts }

// Process filters one client request and fills rec with the resulting log
// line. rec is fully overwritten.
func (c *Cluster) Process(req *synth.Request, rec *logfmt.Record) {
	*rec = logfmt.Record{}
	rec.Time = req.Time
	rec.Method = req.Method
	rec.Scheme = req.Scheme
	rec.Host = req.Host
	rec.Port = req.Port
	rec.Path = req.Path
	rec.Query = req.Query
	rec.Ext = urlx.PathExt(req.Path)
	rec.UserAgent = req.UserAgent

	sg := c.routeProxy(req)
	rec.SetProxy(sg)
	rec.ClientIP = c.clientIP(req)
	rec.Categories = defaultCategoryLabel(sg)

	// Policy decision.
	preq := policy.Request{
		Host: req.Host, Port: req.Port, Path: req.Path, Query: req.Query,
		Scheme: req.Scheme, Method: req.Method,
	}
	verdict := c.cfg.Engine.Evaluate(&preq)

	// SG-44's intermittent Tor-onion blocking (§7.1), plus a trickle on
	// SG-48 (the paper attributes 0.01% of censored Tor to it).
	if verdict.Action == policy.Allow && c.cfg.Consensus != nil {
		switch c.cfg.Consensus.ClassifyRequest(req.Host, req.Port, req.Path) {
		case torsim.TorOnion:
			if sg == 44 && c.torBlockActive(req.Time) {
				verdict = policy.Verdict{Action: policy.Deny, Kind: policy.KindIPRange, Match: "tor-relay"}
			} else if sg == 48 && c.r.Bool(0.001) {
				verdict = policy.Verdict{Action: policy.Deny, Kind: policy.KindIPRange, Match: "tor-relay"}
			}
		case torsim.TorHTTP:
			// Torhttp is always allowed in the observation window.
		}
	}

	switch verdict.Action {
	case policy.Deny:
		rec.Exception = logfmt.ExPolicyDenied
		rec.Filter = logfmt.Denied
		rec.SAction = "TCP_DENIED"
		rec.Status = 403
		rec.ScBytes = 729
		rec.CsBytes = 300 + uint32(c.r.Intn(400))
		rec.TimeTaken = uint32(1 + c.r.Intn(20))
		c.counts.Censored++
	case policy.Redirect:
		rec.Exception = logfmt.ExPolicyRedirect
		rec.Filter = logfmt.Denied
		rec.SAction = "tcp_policy_redirect"
		rec.Status = 302
		rec.ScBytes = 350
		rec.CsBytes = 300 + uint32(c.r.Intn(400))
		rec.TimeTaken = uint32(1 + c.r.Intn(10))
		if verdict.Kind == policy.KindCategory && isPageRule(verdict.Match, req.Host) {
			rec.Categories = customCategoryLabel(sg)
		}
		c.counts.Censored++
		c.counts.Redirect++
	default:
		// Allowed by policy; the network may still fail it (Table 3's
		// error breakdown).
		if ex, failed := c.networkFate(); failed {
			rec.Exception = ex
			rec.Filter = logfmt.Denied
			rec.SAction = "TCP_ERR_MISS"
			rec.Status = errorStatus(ex)
			rec.ScBytes = 0
			rec.CsBytes = 300 + uint32(c.r.Intn(400))
			rec.TimeTaken = errorLatency(ex, c.r)
			c.counts.Errors++
		} else {
			rec.Exception = logfmt.ExNone
			rec.Filter = logfmt.Observed
			rec.SAction = "TCP_NC_MISS"
			rec.Status = 200
			rec.ScBytes = 500 + uint32(c.r.Intn(60000))
			rec.CsBytes = 300 + uint32(c.r.Intn(500))
			rec.TimeTaken = uint32(20 + c.r.Intn(1500))
			if req.Method == "CONNECT" {
				rec.SAction = "TCP_TUNNELED"
			}
			c.counts.Allowed++
		}
	}

	// Cache behaviour: a small share of requests is answered from cache
	// (PROXIED), with the same exception mix as the rest of the traffic.
	if c.r.Bool(c.cfg.ProxiedRate) {
		rec.Filter = logfmt.Proxied
		rec.SAction = "TCP_HIT"
		c.counts.Proxied++
	}
	c.counts.Total++
}

// routeProxy assigns the handling proxy: SG-42 only in July (the leak's
// coverage), domain-affinity for metacafe/skype (§5.2's redirection
// hypothesis), uniform hashing otherwise.
func (c *Cluster) routeProxy(req *synth.Request) int {
	if isJuly(req.Time) {
		return 42
	}
	domain := urlx.RegisteredDomain(req.Host)
	switch domain {
	case "metacafe.com":
		if c.r.Bool(0.95) {
			return 48
		}
		return 45
	case "skype.com":
		if c.r.Bool(0.85) {
			return 48
		}
		return 45
	}
	h := stats.Hash64(req.Host) ^ uint64(req.ClientIP)*0x9e3779b97f4a7c15 ^ uint64(req.Time/3600)
	return logfmt.FirstProxy + int(h%logfmt.NumProxies)
}

// torBlockActive implements the Fig. 9 alternation: hour-granular windows,
// deterministic in the seed, with ~TorBlockDuty duty cycle; quiet on the
// night of Aug 3 (hours are UTC).
func (c *Cluster) torBlockActive(t int64) bool {
	hour := t / 3600
	h := stats.Hash64(fmt.Sprintf("torwin-%d-%d", c.cfg.Seed, hour))
	duty := c.cfg.TorBlockDuty
	// Lull during the night of Aug 3 (22:00 Aug 3 – 06:00 Aug 4 UTC).
	const aug3 = 1312329600 // 2011-08-03 00:00:00 UTC
	if t >= aug3+22*3600 && t < aug3+30*3600 {
		duty *= 0.1
	}
	if float64(h%1000)/1000 < duty {
		return c.r.Bool(0.92) // aggressive window
	}
	return c.r.Bool(0.03) // mild background
}

// networkFate draws a network error per the model; ok=false means success.
func (c *Cluster) networkFate() (logfmt.ExceptionID, bool) {
	x := c.r.Float64()
	acc := 0.0
	for _, e := range c.errs {
		acc += e.p
		if x < acc {
			return e.ex, true
		}
	}
	return logfmt.ExNone, false
}

// clientIP renders c-ip: hashed during the Duser window (Telecomix
// preserved hashes for July 22–23), zeroed otherwise.
func (c *Cluster) clientIP(req *synth.Request) string {
	if isDuserWindow(req.Time) {
		return fmt.Sprintf("%08x", stats.Hash64(urlx.FormatIPv4(req.ClientIP))&0xffffffff)
	}
	return "0.0.0.0"
}

const (
	july22 = 1311292800 // 2011-07-22 00:00:00 UTC
	july24 = 1311465600 // 2011-07-24 00:00:00 UTC
	aug1   = 1312156800 // 2011-08-01 00:00:00 UTC
)

func isJuly(t int64) bool { return t < aug1 }

func isDuserWindow(t int64) bool { return t >= july22 && t < july24 }

// defaultCategoryLabel reproduces §5.2: SG-43 and SG-48 log "none", the
// other five log "unavailable".
func defaultCategoryLabel(sg int) string {
	if sg == 43 || sg == 48 {
		return "none"
	}
	return "unavailable"
}

// customCategoryLabel: the custom category combines with the default
// ("Blocked sites; unavailable" on five proxies, "Blocked sites" on the
// two whose default is "none").
func customCategoryLabel(sg int) string {
	if sg == 43 || sg == 48 {
		return "Blocked sites"
	}
	return "Blocked sites; unavailable"
}

// isPageRule distinguishes page-rule category hits (which carry the custom
// label) from plain redirect hosts (Table 7 hosts keep the default label:
// the paper finds upload.youtube.com redirects not categorized as
// "Blocked sites" — only the Facebook pages are).
func isPageRule(match, host string) bool {
	return len(match) > len(host) && match[:len(host)] == host && match[len(host)] == '/'
}

// errorStatus maps error exceptions to plausible HTTP statuses.
func errorStatus(ex logfmt.ExceptionID) uint16 {
	switch ex {
	case logfmt.ExTCPError:
		return 503
	case logfmt.ExInternalError:
		return 500
	case logfmt.ExInvalidRequest:
		return 400
	case logfmt.ExUnsupportedProtocol:
		return 501
	case logfmt.ExDNSUnresolvedHostname, logfmt.ExDNSServerFailure:
		return 503
	case logfmt.ExUnsupportedEncoding:
		return 415
	case logfmt.ExInvalidResponse:
		return 502
	}
	return 0
}

func errorLatency(ex logfmt.ExceptionID, r *stats.Rand) uint32 {
	switch ex {
	case logfmt.ExTCPError:
		return 3000 + uint32(r.Intn(27000)) // connect timeouts
	case logfmt.ExDNSUnresolvedHostname, logfmt.ExDNSServerFailure:
		return 1000 + uint32(r.Intn(4000))
	default:
		return uint32(1 + r.Intn(100))
	}
}
