package proxysim

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/policy"
)

// liveProxy spins up the filtering proxy plus an origin server, returning
// a client routed through the proxy.
func liveProxy(t *testing.T, logFn func(*logfmt.Record)) (*http.Client, *httptest.Server, *Server) {
	t.Helper()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "origin:%s", r.URL.Path)
	}))
	t.Cleanup(origin.Close)

	srv := &Server{
		Engine:      policy.Compile(policy.PaperRuleset()),
		RedirectURL: origin.URL + "/gov-page",
		LogFunc:     logFn,
		Now:         func() time.Time { return time.Date(2011, 8, 3, 9, 0, 0, 0, time.UTC) },
	}
	proxy := httptest.NewServer(srv)
	t.Cleanup(proxy.Close)

	proxyURL, err := url.Parse(proxy.URL)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{
		Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)},
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	return client, origin, srv
}

func TestLiveProxyAllows(t *testing.T) {
	var recs []logfmt.Record
	client, origin, _ := liveProxy(t, func(r *logfmt.Record) { recs = append(recs, *r) })

	originHost := strings.TrimPrefix(origin.URL, "http://")
	resp, err := client.Get("http://" + originHost + "/hello")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "origin:/hello" {
		t.Fatalf("allowed fetch: %d %q", resp.StatusCode, body)
	}
	if len(recs) != 1 || recs[0].Exception != logfmt.ExNone {
		t.Fatalf("log: %+v", recs)
	}
}

func TestLiveProxyDeniesKeyword(t *testing.T) {
	var recs []logfmt.Record
	client, origin, srv := liveProxy(t, func(r *logfmt.Record) { recs = append(recs, *r) })

	originHost := strings.TrimPrefix(origin.URL, "http://")
	resp, err := client.Get("http://" + originHost + "/cgi/proxy.php?u=x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Exception-Id"); got != "policy_denied" {
		t.Errorf("X-Exception-Id = %q", got)
	}
	if len(recs) != 1 || recs[0].Exception != logfmt.ExPolicyDenied {
		t.Fatalf("log: %+v", recs)
	}
	if srv.Counts().Censored != 1 {
		t.Errorf("counts: %+v", srv.Counts())
	}
}

func TestLiveProxyDeniesDomain(t *testing.T) {
	client, _, _ := liveProxy(t, nil)
	// The proxy filters on the request URL host, no upstream contact
	// needed for a denial.
	resp, err := client.Get("http://www.metacafe.com/watch/1/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
}

func TestLiveProxyRedirectsTargetedPage(t *testing.T) {
	var recs []logfmt.Record
	client, origin, _ := liveProxy(t, func(r *logfmt.Record) { recs = append(recs, *r) })

	resp, err := client.Get("http://www.facebook.com/Syrian.Revolution?ref=ts")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusFound {
		t.Fatalf("status = %d, want 302", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, origin.URL) {
		t.Errorf("Location = %q", loc)
	}
	if len(recs) != 1 || recs[0].Exception != logfmt.ExPolicyRedirect {
		t.Fatalf("log: %+v", recs)
	}
	if recs[0].Categories != "Blocked sites; unavailable" {
		t.Errorf("categories = %q", recs[0].Categories)
	}
}

func TestLiveProxyConnectDenied(t *testing.T) {
	_, _, srvPtr := liveProxy(t, nil)
	proxy := httptest.NewServer(srvPtr)
	defer proxy.Close()

	conn, err := net.Dial("tcp", strings.TrimPrefix(proxy.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT conn.skype.com:443 HTTP/1.1\r\nHost: conn.skype.com:443\r\n\r\n")
	buf := make([]byte, 1024)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "403") {
		t.Fatalf("CONNECT to skype should be denied, got %q", buf[:n])
	}
}

func TestLiveProxyConnectTunnels(t *testing.T) {
	// An origin speaking a trivial echo protocol behind CONNECT.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()

	srv := &Server{Engine: policy.Compile(policy.PaperRuleset())}
	proxy := httptest.NewServer(srv)
	defer proxy.Close()

	conn, err := net.Dial("tcp", strings.TrimPrefix(proxy.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "CONNECT %s HTTP/1.1\r\nHost: %s\r\n\r\n", ln.Addr(), ln.Addr())
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	reader := make([]byte, 256)
	n, err := conn.Read(reader)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reader[:n]), "200") {
		t.Fatalf("CONNECT handshake: %q", reader[:n])
	}
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, 4)
	if _, err := io.ReadFull(conn, echo); err != nil {
		t.Fatal(err)
	}
	if string(echo) != "ping" {
		t.Fatalf("echo = %q", echo)
	}
}

func TestLiveProxyUpstreamError(t *testing.T) {
	var recs []logfmt.Record
	client, _, _ := liveProxy(t, func(r *logfmt.Record) { recs = append(recs, *r) })
	// 127.0.0.1:1 is reliably refused.
	resp, err := client.Get("http://127.0.0.1:1/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if len(recs) != 1 || recs[0].Exception != logfmt.ExTCPError {
		t.Fatalf("log: %+v", recs)
	}
}
