package categorydb

import "testing"

func TestClassifySuffixWalk(t *testing.T) {
	db := PaperSeed()
	cases := map[string]Category{
		"skype.com":            CatInstantMsg,
		"download.skype.com":   CatInstantMsg,
		"metacafe.com":         CatStreamingMedia,
		"www.metacafe.com":     CatStreamingMedia,
		"upload.youtube.com":   CatStreamingMedia,
		"plus.google.com":      CatSocialNetwork, // more specific than google.com
		"www.google.com":       CatSearchEngines,
		"unknown-host.example": CatNA,
		"static.ak.fbcdn.net":  CatContentServer,
		"hotsptshld.com":       CatAnonymizer,
		"panet.co.il":          CatGeneralNews,
		"tracker-x.furk.net":   CatP2P,
		"webmessenger.msn.com": CatInstantMsg, // more specific than msn.com
		"www.msn.com":          CatPortalSites,
		"apps.facebook.com":    CatSocialNetwork,
	}
	for host, want := range cases {
		if got := db.Classify(host); got != want {
			t.Errorf("Classify(%q) = %q, want %q", host, got, want)
		}
	}
}

func TestAddNormalization(t *testing.T) {
	db := New()
	db.Add(".Example.COM ", CatGames)
	if got := db.Classify("sub.example.com"); got != CatGames {
		t.Errorf("normalized add failed: %q", got)
	}
	db.Add("", CatGames) // ignored
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestOverwrite(t *testing.T) {
	db := New()
	db.Add("x.com", CatGames)
	db.Add("x.com", CatGeneralNews)
	if got := db.Classify("x.com"); got != CatGeneralNews {
		t.Errorf("overwrite failed: %q", got)
	}
}

func TestIsAnonymizer(t *testing.T) {
	db := PaperSeed()
	if !db.IsAnonymizer("www.hidemyass.com") {
		t.Error("hidemyass not anonymizer")
	}
	if db.IsAnonymizer("facebook.com") {
		t.Error("facebook flagged anonymizer")
	}
}

func TestDomainsSorted(t *testing.T) {
	db := New()
	db.Add("b.com", CatGames)
	db.Add("a.com", CatGames)
	db.Add("c.com", CatForums)
	got := db.Domains(CatGames)
	if len(got) != 2 || got[0] != "a.com" || got[1] != "b.com" {
		t.Errorf("Domains = %v", got)
	}
}

// The paper's key category claims must hold in the seed: the top censored
// domains map to the categories Fig. 3 and Table 9 report.
func TestSeedMatchesPaperCategories(t *testing.T) {
	db := PaperSeed()
	checks := map[string]Category{
		"metacafe.com":     CatStreamingMedia, // Table 9: Streaming Media
		"skype.com":        CatInstantMsg,     // Table 9: Instant Messaging
		"jumblo.com":       CatInstantMsg,
		"wikimedia.org":    CatEducation, // Table 9: Education/Reference
		"aawsat.com":       CatGeneralNews,
		"jeddahbikers.com": CatOnlineShopping,
		"badoo.com":        CatSocialNetwork,
		"islamway.com":     CatNA, // paper's NA bucket: uncategorized
	}
	for host, want := range checks {
		if got := db.Classify(host); got != want {
			t.Errorf("seed: %q -> %q, want %q", host, got, want)
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	db := PaperSeed()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Classify("deep.sub.domain.facebook.com")
	}
}
