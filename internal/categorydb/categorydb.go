// Package categorydb is the URL-categorization substrate standing in for
// McAfee's TrustedSource service, which the paper uses to characterize
// censored websites (Fig. 3, Table 9) and to identify "Anonymizer" hosts
// (§7.2, Fig. 10) because the Syrian proxies had no category database of
// their own (cs-categories only ever held "unavailable"/"none" plus the
// custom "Blocked sites" label).
//
// The database maps domain suffixes to categories; unknown hosts resolve
// to NA, mirroring the 42 uncategorizable domains in Table 9.
package categorydb

import (
	"sort"
	"strings"
)

// Category is a McAfee-style content category. Values are the category
// names the paper reports.
type Category string

// The category vocabulary used across the paper's Fig. 3, Table 9 and §7.2.
const (
	CatNA               Category = "NA"
	CatContentServer    Category = "Content Server"
	CatStreamingMedia   Category = "Streaming Media"
	CatInstantMsg       Category = "Instant Messaging"
	CatPortalSites      Category = "Portal Sites"
	CatGeneralNews      Category = "General News"
	CatSocialNetwork    Category = "Social Networking"
	CatGames            Category = "Games"
	CatEducation        Category = "Education/Reference"
	CatOnlineShopping   Category = "Online Shopping"
	CatInternetSvcs     Category = "Internet Services"
	CatEntertainment    Category = "Entertainment"
	CatForums           Category = "Forum/Bulletin Boards"
	CatAnonymizer       Category = "Anonymizers"
	CatSearchEngines    Category = "Search Engines"
	CatSoftwareDownload Category = "Software/Hardware"
	CatPornography      Category = "Pornography"
	CatAdvertising      Category = "Web Ads"
	CatTrackers         Category = "Web Analytics"
	CatP2P              Category = "Media Sharing"
	CatGovernment       Category = "Government/Military"
	CatTravel           Category = "Travel"
)

// DB maps registrable-domain suffixes to categories.
type DB struct {
	bySuffix map[string]Category
}

// New returns an empty database.
func New() *DB { return &DB{bySuffix: make(map[string]Category)} }

// Add registers a domain suffix under a category, overwriting any previous
// assignment. The suffix matches the domain itself and all subdomains.
func (db *DB) Add(suffix string, cat Category) {
	s := strings.ToLower(strings.TrimPrefix(strings.TrimSpace(suffix), "."))
	if s != "" {
		db.bySuffix[s] = cat
	}
}

// AddAll registers several suffixes under one category.
func (db *DB) AddAll(cat Category, suffixes ...string) {
	for _, s := range suffixes {
		db.Add(s, cat)
	}
}

// Classify returns the category of host, walking suffixes right-to-left
// like the policy engine does; NA when no entry matches.
func (db *DB) Classify(host string) Category {
	probe := host
	for {
		if cat, ok := db.bySuffix[probe]; ok {
			return cat
		}
		i := strings.IndexByte(probe, '.')
		if i < 0 {
			return CatNA
		}
		probe = probe[i+1:]
	}
}

// IsAnonymizer reports whether host is categorized as an anonymizer
// (web proxy / VPN endpoint), the Fig. 10 population.
func (db *DB) IsAnonymizer(host string) bool {
	return db.Classify(host) == CatAnonymizer
}

// Len returns the number of registered suffixes.
func (db *DB) Len() int { return len(db.bySuffix) }

// Domains returns all registered suffixes for cat, sorted.
func (db *DB) Domains(cat Category) []string {
	var out []string
	for s, c := range db.bySuffix {
		if c == cat {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// PaperSeed returns a database pre-loaded with every domain↔category pair
// the paper names, plus enough context domains for the generator's world.
// The synthetic traffic generator registers its procedurally generated
// hosts (anonymizers, news sites, forums) on top of this seed.
func PaperSeed() *DB {
	db := New()
	db.AddAll(CatContentServer,
		"cloudfront.net", "googleusercontent.com", "gstatic.com", "fbcdn.net",
		"akamaihd.net", "akamai.net", "edgecastcdn.net", "llnwd.net")
	db.AddAll(CatStreamingMedia,
		"metacafe.com", "youtube.com", "dailymotion.com", "vimeo.com",
		"justin.tv", "ustream.tv")
	db.AddAll(CatInstantMsg,
		"skype.com", "jumblo.com", "ceipmsn.com", "webmessenger.msn.com",
		"live.com", "messenger.yahoo.com", "icq.com")
	db.AddAll(CatPortalSites,
		"msn.com", "yahoo.com", "conduitapps.com", "aol.com")
	db.AddAll(CatGeneralNews,
		"bbc.co.uk", "aljazeera.net", "aawsat.com", "all4syria.info",
		"alquds.co.uk", "islammemo.cc", "new-syria.com", "free-syria.com",
		"panet.co.il", "cnn.com", "reuters.com", "alarabiya.net")
	db.AddAll(CatSocialNetwork,
		"facebook.com", "twitter.com", "badoo.com", "netlog.com",
		"linkedin.com", "hi5.com", "skyrock.com", "ning.com", "meetup.com",
		"flickr.com", "myspace.com", "tumblr.com", "instagram.com",
		"plus.google.com", "vk.com", "odnoklassniki.ru", "orkut.com",
		"renren.com", "weibo.com", "tagged.com", "last.fm", "pinterest.com",
		"salamworld.com", "muslimup.com", "deviantart.com", "livejournal.com",
		"stumbleupon.com", "foursquare.com")
	db.AddAll(CatGames,
		"zynga.com", "miniclip.com", "king.com")
	db.AddAll(CatEducation,
		"wikimedia.org", "wikipedia.org", "britannica.com", "archive.org")
	db.AddAll(CatOnlineShopping,
		"amazon.com", "ebay.com", "jeddahbikers.com")
	db.AddAll(CatInternetSvcs,
		"mtn.com.sy", "syriatel.sy", "dynDNS.org", "no-ip.com",
		"speedtest.net", "whatismyip.com")
	db.AddAll(CatEntertainment,
		"imdb.com", "mbc.net", "rotana.net", "shahid.net")
	db.AddAll(CatForums,
		"vbulletin.com", "phpbb.com", "stooorage.com", "montadayat.org")
	db.AddAll(CatAnonymizer,
		"hotsptshld.com", "hotspotshield.com", "anchorfree.com",
		"ultrasurf.us", "ultrareach.com", "hidemyass.com", "your-freedom.net",
		"freegate.example", "gtunnel.example", "gpass.example",
		"megaproxy.com", "kproxy.com", "proxify.com")
	db.AddAll(CatSearchEngines,
		"google.com", "bing.com", "ask.com", "yandex.ru")
	db.AddAll(CatSoftwareDownload,
		"microsoft.com", "windowsupdate.com", "adobe.com", "mozilla.org",
		"download.com", "softonic.com")
	db.AddAll(CatPornography, "xvideos.com", "pornhub.com")
	db.AddAll(CatAdvertising,
		"doubleclick.net", "adnxs.com", "admob.com", "trafficholder.com",
		"adbrite.com")
	db.AddAll(CatTrackers,
		"google-analytics.com", "scorecardresearch.com", "quantserve.com")
	db.AddAll(CatP2P,
		"thepiratebay.org", "torrentz.eu", "torrentproject.com", "furk.net",
		"mininova.org")
	db.AddAll(CatGovernment, "gov.sy", "idf.il")
	db.AddAll(CatTravel, "booking.com", "tripadvisor.com")
	return db
}
