package geoip

// This file holds the synthetic-but-shaped seed data replacing the MaxMind
// GeoIP and ip2location datasets: every subnet named in the paper's
// Tables 11 and 12 is present with its real country, plus filler blocks
// for the countries whose censorship ratios Table 11 reports and a few
// never-censored countries for contrast. The generator draws destination
// IPs from these blocks, and the Table 11/12 analyses geo-localize against
// the same database, exactly as the paper joins its logs against MaxMind.

// IsraeliSubnets are the five subnets of Table 12, in paper order.
var IsraeliSubnets = []string{
	"84.229.0.0/16",
	"46.120.0.0/15",
	"89.138.0.0/15",
	"212.235.64.0/19",
	"212.150.0.0/16",
}

// countryBlock is one country's address allocation in the synthetic world.
type countryBlock struct {
	country string
	cidrs   []string
}

var seedBlocks = []countryBlock{
	{"IL", IsraeliSubnets},
	{"IL", []string{"80.179.0.0/16"}}, // extra Israeli space outside Table 12
	{"KW", []string{"168.187.0.0/16"}},
	{"RU", []string{"93.158.0.0/16", "178.154.0.0/16"}},
	{"GB", []string{"212.58.224.0/19", "31.170.160.0/19"}},
	{"NL", []string{"145.97.0.0/16", "94.75.0.0/16"}},
	{"SG", []string{"203.116.0.0/16"}},
	{"BG", []string{"212.39.64.0/18"}},
	{"US", []string{"8.8.0.0/16", "72.14.192.0/18", "69.63.176.0/20"}},
	{"DE", []string{"217.160.0.0/16"}},
	{"FR", []string{"212.27.32.0/19"}},
	{"SY", []string{"82.137.192.0/18", "31.9.0.0/16"}},
}

// SyriaEra returns the seed database described above. It always builds
// cleanly; failure is a programming error in the seed tables.
func SyriaEra() *DB {
	var b Builder
	for _, blk := range seedBlocks {
		for _, cidr := range blk.cidrs {
			if err := b.AddCIDR(cidr, blk.country); err != nil {
				panic("geoip: bad seed " + cidr + ": " + err.Error())
			}
		}
	}
	db, err := b.Build()
	if err != nil {
		panic("geoip: seed overlap: " + err.Error())
	}
	return db
}

// CountryBlocks returns, for each country in the seed, the list of CIDRs.
// The traffic generator uses this to draw realistic destination IPs.
func CountryBlocks() map[string][]string {
	out := make(map[string][]string)
	for _, blk := range seedBlocks {
		out[blk.country] = append(out[blk.country], blk.cidrs...)
	}
	return out
}
