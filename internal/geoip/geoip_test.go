package geoip

import (
	"testing"
	"testing/quick"

	"syriafilter/internal/urlx"
)

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	ip, ok := urlx.ParseIPv4(s)
	if !ok {
		t.Fatalf("bad test IP %q", s)
	}
	return ip
}

func TestParseCIDR(t *testing.T) {
	start, end, err := ParseCIDR("212.150.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if start != 0xd4960000 || end != 0xd496ffff {
		t.Errorf("range = %x..%x", start, end)
	}
	start, end, err = ParseCIDR("1.2.3.4/32")
	if err != nil {
		t.Fatal(err)
	}
	if start != end {
		t.Error("/32 should be a single address")
	}
	start, end, err = ParseCIDR("0.0.0.0/0")
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 || end != 0xffffffff {
		t.Errorf("/0 = %x..%x", start, end)
	}
	for _, bad := range []string{"1.2.3.4", "300.1.1.1/8", "1.2.3.4/33", "1.2.3.4/x", "1.2.3.4/"} {
		if _, _, err := ParseCIDR(bad); err == nil {
			t.Errorf("ParseCIDR(%q) accepted", bad)
		}
	}
}

func TestBuilderOverlapDetection(t *testing.T) {
	var b Builder
	if err := b.AddCIDR("10.0.0.0/8", "XX"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddCIDR("10.1.0.0/16", "YY"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("overlap not detected")
	}
}

func TestBuilderRangeValidation(t *testing.T) {
	var b Builder
	if err := b.AddRange(10, 5, "XX", "bad"); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestLookup(t *testing.T) {
	db := SyriaEra()
	cases := map[string]string{
		"84.229.10.20":  "IL",
		"46.121.0.1":    "IL", // inside 46.120.0.0/15
		"212.150.7.7":   "IL",
		"212.235.64.1":  "IL",
		"212.235.96.1":  "", // just past /19
		"168.187.5.5":   "KW",
		"8.8.8.8":       "US",
		"82.137.200.42": "SY", // the proxies themselves
		"1.1.1.1":       "",
	}
	for host, want := range cases {
		if got := db.CountryOfHost(host); got != want {
			t.Errorf("CountryOfHost(%s) = %q, want %q", host, got, want)
		}
	}
	if got := db.CountryOfHost("not-an-ip.example"); got != "" {
		t.Errorf("hostname geo-localized to %q", got)
	}
}

func TestLookupBoundaries(t *testing.T) {
	var b Builder
	if err := b.AddCIDR("10.0.0.0/24", "AA"); err != nil {
		t.Fatal(err)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Lookup(mustIP(t, "10.0.0.0")); !ok {
		t.Error("range start not matched")
	}
	if _, ok := db.Lookup(mustIP(t, "10.0.0.255")); !ok {
		t.Error("range end not matched")
	}
	if _, ok := db.Lookup(mustIP(t, "10.0.1.0")); ok {
		t.Error("past range end matched")
	}
	if _, ok := db.Lookup(mustIP(t, "9.255.255.255")); ok {
		t.Error("before range start matched")
	}
}

// Property: binary-search lookup agrees with linear scan everywhere.
func TestLookupMatchesLinear(t *testing.T) {
	db := SyriaEra()
	if err := quick.Check(func(ip uint32) bool {
		a, aok := db.Lookup(ip)
		b, bok := db.LookupLinear(ip)
		return aok == bok && a == b
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCIDRContains(t *testing.T) {
	if !CIDRContains("84.229.0.0/16", mustIP(t, "84.229.1.2")) {
		t.Error("member rejected")
	}
	if CIDRContains("84.229.0.0/16", mustIP(t, "84.230.0.0")) {
		t.Error("non-member accepted")
	}
	if CIDRContains("garbage", 42) {
		t.Error("bad CIDR matched")
	}
}

func TestSeedCoversPaperTables(t *testing.T) {
	db := SyriaEra()
	// Every Table 12 subnet must resolve to IL.
	for _, cidr := range IsraeliSubnets {
		start, _, err := ParseCIDR(cidr)
		if err != nil {
			t.Fatal(err)
		}
		r, ok := db.Lookup(start)
		if !ok || r.Country != "IL" {
			t.Errorf("subnet %s: country %q ok=%v", cidr, r.Country, ok)
		}
	}
	// Every Table 11 country must have at least one block.
	blocks := CountryBlocks()
	for _, c := range []string{"IL", "KW", "RU", "GB", "NL", "SG", "BG"} {
		if len(blocks[c]) == 0 {
			t.Errorf("no seed block for %s", c)
		}
	}
}

func TestRangesCopy(t *testing.T) {
	db := SyriaEra()
	rs := db.Ranges()
	if len(rs) != db.Len() {
		t.Fatalf("Ranges len %d != %d", len(rs), db.Len())
	}
	rs[0].Country = "ZZ"
	if db.Ranges()[0].Country == "ZZ" {
		t.Error("Ranges returned internal slice")
	}
}

func BenchmarkLookupBinary(b *testing.B) {
	db := SyriaEra()
	ip := mustIP(&testing.T{}, "212.150.99.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Lookup(ip)
	}
}

func BenchmarkLookupLinear(b *testing.B) {
	db := SyriaEra()
	ip := mustIP(&testing.T{}, "212.150.99.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.LookupLinear(ip)
	}
}
