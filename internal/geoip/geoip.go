// Package geoip is the IP-geolocation substrate standing in for the
// MaxMind GeoIP database the paper uses in §5.4 to geo-localize IP-literal
// request hosts (Table 11) and for the ip2location Israeli subnet list
// behind Table 12.
//
// The database is an immutable sorted list of non-overlapping [start, end]
// IPv4 ranges with a country code and optional subnet label; lookups are a
// binary search. A Builder assembles it from CIDR strings and explicit
// ranges, merging and validating as it goes.
package geoip

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"syriafilter/internal/urlx"
)

// Range is one geolocated IPv4 interval. Start and End are inclusive,
// big-endian uint32s.
type Range struct {
	Start   uint32
	End     uint32
	Country string // ISO-3166-alpha-2 ("IL", "SY", ...)
	Subnet  string // optional CIDR label this range came from
}

// DB is an immutable geolocation database.
type DB struct {
	ranges []Range
}

// Builder accumulates ranges for a DB.
type Builder struct {
	ranges []Range
}

// AddCIDR adds a CIDR block ("212.150.0.0/16") for a country.
func (b *Builder) AddCIDR(cidr, country string) error {
	start, end, err := ParseCIDR(cidr)
	if err != nil {
		return err
	}
	b.ranges = append(b.ranges, Range{Start: start, End: end, Country: country, Subnet: cidr})
	return nil
}

// AddRange adds an explicit inclusive range.
func (b *Builder) AddRange(start, end uint32, country, label string) error {
	if end < start {
		return errors.New("geoip: range end before start")
	}
	b.ranges = append(b.ranges, Range{Start: start, End: end, Country: country, Subnet: label})
	return nil
}

// Build sorts, checks for overlaps, and returns the immutable DB.
func (b *Builder) Build() (*DB, error) {
	rs := make([]Range, len(b.ranges))
	copy(rs, b.ranges)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	for i := 1; i < len(rs); i++ {
		if rs[i].Start <= rs[i-1].End {
			return nil, fmt.Errorf("geoip: overlapping ranges %s and %s",
				rs[i-1].Subnet, rs[i].Subnet)
		}
	}
	return &DB{ranges: rs}, nil
}

// Lookup returns the range containing ip, if any.
func (db *DB) Lookup(ip uint32) (Range, bool) {
	// Binary search for the last range with Start <= ip.
	lo, hi := 0, len(db.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		if db.ranges[mid].Start <= ip {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Range{}, false
	}
	r := db.ranges[lo-1]
	if ip > r.End {
		return Range{}, false
	}
	return r, true
}

// Country returns the country code for ip ("" if unknown).
func (db *DB) Country(ip uint32) string {
	r, ok := db.Lookup(ip)
	if !ok {
		return ""
	}
	return r.Country
}

// CountryOfHost geo-localizes a dotted-quad host string.
func (db *DB) CountryOfHost(host string) string {
	ip, ok := urlx.ParseIPv4(host)
	if !ok {
		return ""
	}
	return db.Country(ip)
}

// Len returns the number of ranges.
func (db *DB) Len() int { return len(db.ranges) }

// Ranges returns a copy of the range table (ascending by start).
func (db *DB) Ranges() []Range {
	out := make([]Range, len(db.ranges))
	copy(out, db.ranges)
	return out
}

// LookupLinear is the O(n) reference lookup used by property tests and the
// ablation benchmark.
func (db *DB) LookupLinear(ip uint32) (Range, bool) {
	for _, r := range db.ranges {
		if ip >= r.Start && ip <= r.End {
			return r, true
		}
	}
	return Range{}, false
}

// ParseCIDR parses "a.b.c.d/len" into an inclusive range.
func ParseCIDR(cidr string) (start, end uint32, err error) {
	slash := strings.IndexByte(cidr, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("geoip: %q is not CIDR", cidr)
	}
	base, ok := urlx.ParseIPv4(cidr[:slash])
	if !ok {
		return 0, 0, fmt.Errorf("geoip: bad address in %q", cidr)
	}
	bits := 0
	for _, c := range cidr[slash+1:] {
		if c < '0' || c > '9' {
			return 0, 0, fmt.Errorf("geoip: bad prefix length in %q", cidr)
		}
		bits = bits*10 + int(c-'0')
		if bits > 32 {
			return 0, 0, fmt.Errorf("geoip: prefix length out of range in %q", cidr)
		}
	}
	if cidr[slash+1:] == "" {
		return 0, 0, fmt.Errorf("geoip: missing prefix length in %q", cidr)
	}
	var mask uint32
	if bits > 0 {
		mask = ^uint32(0) << (32 - bits)
	}
	start = base & mask
	end = start | ^mask
	return start, end, nil
}

// CIDRContains reports whether ip falls inside cidr.
func CIDRContains(cidr string, ip uint32) bool {
	start, end, err := ParseCIDR(cidr)
	if err != nil {
		return false
	}
	return ip >= start && ip <= end
}
