package strmatch

import "strings"

// SuffixSet matches hostnames against a set of domain suffixes: a host
// matches entry "example.com" if it equals "example.com" or ends with
// ".example.com". TLD-level entries like "il" implement the paper's
// observation that all .il domains are blocked.
//
// Lookups walk the host's label boundaries right-to-left, so cost is
// O(#labels) map probes regardless of set size.
type SuffixSet struct {
	suffixes map[string]struct{}
}

// NewSuffixSet builds a matcher from domain suffixes. Entries are
// normalized to lowercase without leading dots. Empty entries are ignored.
func NewSuffixSet(domains []string) *SuffixSet {
	s := &SuffixSet{suffixes: make(map[string]struct{}, len(domains))}
	for _, d := range domains {
		d = strings.ToLower(strings.TrimPrefix(strings.TrimSpace(d), "."))
		if d != "" {
			s.suffixes[d] = struct{}{}
		}
	}
	return s
}

// Add inserts a suffix into the set.
func (s *SuffixSet) Add(domain string) {
	d := strings.ToLower(strings.TrimPrefix(strings.TrimSpace(domain), "."))
	if d != "" {
		s.suffixes[d] = struct{}{}
	}
}

// Len returns the number of suffixes.
func (s *SuffixSet) Len() int { return len(s.suffixes) }

// Match reports whether host matches any suffix, returning the matching
// suffix. Host is assumed already lowercased (the log pipeline normalizes
// hosts at parse time).
func (s *SuffixSet) Match(host string) (string, bool) {
	if len(s.suffixes) == 0 || host == "" {
		return "", false
	}
	// Probe host, then each suffix starting after a dot.
	probe := host
	for {
		if _, ok := s.suffixes[probe]; ok {
			return probe, true
		}
		i := strings.IndexByte(probe, '.')
		if i < 0 {
			return "", false
		}
		probe = probe[i+1:]
	}
}

// Contains reports whether host matches any suffix.
func (s *SuffixSet) Contains(host string) bool {
	_, ok := s.Match(host)
	return ok
}

// Suffixes returns the suffix list in unspecified order.
func (s *SuffixSet) Suffixes() []string {
	out := make([]string, 0, len(s.suffixes))
	for d := range s.suffixes {
		out = append(out, d)
	}
	return out
}
