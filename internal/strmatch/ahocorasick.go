// Package strmatch implements the multi-pattern string matching primitives
// behind both sides of the reproduced system: the Blue Coat policy engine
// uses them to apply keyword and domain blacklists to URLs (§5.4 of the
// paper: "a simple string-matching engine that detects any blacklisted
// substring in the URL"), and the analysis layer uses them to re-discover
// those blacklists from the logs.
//
// Two matchers are provided:
//
//   - AhoCorasick: a byte-level Aho–Corasick automaton for substring sets,
//     O(len(text)) per scan independent of pattern count.
//   - SuffixSet: a domain-suffix matcher ("skype.com" matches itself and
//     any subdomain) with O(#labels) lookups.
package strmatch

// AhoCorasick is a compiled multi-pattern substring matcher. Build once
// with NewAhoCorasick, then scan any number of texts concurrently (the
// automaton is immutable after construction).
type AhoCorasick struct {
	patterns []string
	// Dense automaton: next[state][b] is the goto+fail transition already
	// resolved at build time, so matching is a single table walk.
	next [][256]int32
	// out[state] is a bitset-ish list of pattern indices ending at state.
	out [][]int32
}

// NewAhoCorasick compiles the automaton for the given patterns. Empty
// patterns are ignored. Duplicate patterns are collapsed.
func NewAhoCorasick(patterns []string) *AhoCorasick {
	uniq := make([]string, 0, len(patterns))
	seen := make(map[string]struct{}, len(patterns))
	for _, p := range patterns {
		if p == "" {
			continue
		}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		uniq = append(uniq, p)
	}

	type node struct {
		children map[byte]int32
		fail     int32
		out      []int32
	}
	trie := []node{{children: map[byte]int32{}}}

	for pi, p := range uniq {
		cur := int32(0)
		for i := 0; i < len(p); i++ {
			b := p[i]
			nxt, ok := trie[cur].children[b]
			if !ok {
				trie = append(trie, node{children: map[byte]int32{}})
				nxt = int32(len(trie) - 1)
				trie[cur].children[b] = nxt
			}
			cur = nxt
		}
		trie[cur].out = append(trie[cur].out, int32(pi))
	}

	// BFS to compute failure links and propagate outputs.
	queue := make([]int32, 0, len(trie))
	for _, child := range trie[0].children {
		trie[child].fail = 0
		queue = append(queue, child)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for b, v := range trie[u].children {
			queue = append(queue, v)
			f := trie[u].fail
			for {
				if nxt, ok := trie[f].children[b]; ok && nxt != v {
					trie[v].fail = nxt
					break
				}
				if f == 0 {
					if nxt, ok := trie[0].children[b]; ok && nxt != v {
						trie[v].fail = nxt
					} else {
						trie[v].fail = 0
					}
					break
				}
				f = trie[f].fail
			}
			trie[v].out = append(trie[v].out, trie[trie[v].fail].out...)
		}
	}

	// Flatten to a dense transition table with failures resolved.
	ac := &AhoCorasick{
		patterns: uniq,
		next:     make([][256]int32, len(trie)),
		out:      make([][]int32, len(trie)),
	}
	for s := range trie {
		ac.out[s] = trie[s].out
	}
	// Root transitions.
	for b := 0; b < 256; b++ {
		if nxt, ok := trie[0].children[byte(b)]; ok {
			ac.next[0][b] = nxt
		} else {
			ac.next[0][b] = 0
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		for b := 0; b < 256; b++ {
			if nxt, ok := trie[s].children[byte(b)]; ok {
				ac.next[s][b] = nxt
			} else {
				ac.next[s][b] = ac.next[trie[s].fail][b]
			}
		}
	}
	return ac
}

// Patterns returns the compiled pattern set (deduplicated, build order).
func (ac *AhoCorasick) Patterns() []string { return ac.patterns }

// Contains reports whether any pattern occurs in text.
func (ac *AhoCorasick) Contains(text string) bool {
	if len(ac.patterns) == 0 {
		return false
	}
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = ac.next[s][text[i]]
		if len(ac.out[s]) > 0 {
			return true
		}
	}
	return false
}

// First returns the index (into Patterns) of the first pattern whose match
// ends earliest in text, or -1 if none match. Ties broken by pattern order.
func (ac *AhoCorasick) First(text string) int {
	if len(ac.patterns) == 0 {
		return -1
	}
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = ac.next[s][text[i]]
		if outs := ac.out[s]; len(outs) > 0 {
			best := outs[0]
			for _, o := range outs[1:] {
				if o < best {
					best = o
				}
			}
			return int(best)
		}
	}
	return -1
}

// FindAll returns the set of pattern indices occurring in text, ascending.
func (ac *AhoCorasick) FindAll(text string) []int {
	if len(ac.patterns) == 0 {
		return nil
	}
	var hit map[int]struct{}
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = ac.next[s][text[i]]
		for _, o := range ac.out[s] {
			if hit == nil {
				hit = make(map[int]struct{})
			}
			hit[int(o)] = struct{}{}
		}
	}
	if hit == nil {
		return nil
	}
	out := make([]int, 0, len(hit))
	for i := range hit {
		out = append(out, i)
	}
	// Insertion sort: hit sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ContainsNaive is the reference O(patterns × text) implementation used for
// property testing and the ablation benchmark.
func ContainsNaive(patterns []string, text string) bool {
	for _, p := range patterns {
		if p == "" {
			continue
		}
		if indexOf(text, p) >= 0 {
			return true
		}
	}
	return false
}

func indexOf(s, sub string) int {
	n, m := len(s), len(sub)
	if m == 0 || m > n {
		return -1
	}
outer:
	for i := 0; i+m <= n; i++ {
		for j := 0; j < m; j++ {
			if s[i+j] != sub[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}
