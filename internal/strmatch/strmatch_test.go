package strmatch

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAhoCorasickBasics(t *testing.T) {
	ac := NewAhoCorasick([]string{"proxy", "israel", "hotspotshield"})
	cases := []struct {
		text string
		want bool
	}{
		{"facebook.com/ajax/proxy.php", true},
		{"www.israelnews.example", true},
		{"hotspotshield.com", true},
		{"google.com/search?q=weather", false},
		{"", false},
		{"prox", false},
		{"pproxyy", true},
	}
	for _, tc := range cases {
		if got := ac.Contains(tc.text); got != tc.want {
			t.Errorf("Contains(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestAhoCorasickOverlappingPatterns(t *testing.T) {
	ac := NewAhoCorasick([]string{"he", "she", "his", "hers"})
	got := ac.FindAll("ushers")
	// "ushers" contains "she" (1), "he" (0), "hers" (3).
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("FindAll = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FindAll = %v, want %v", got, want)
		}
	}
}

func TestAhoCorasickFirst(t *testing.T) {
	ac := NewAhoCorasick([]string{"bbb", "aa"})
	if got := ac.First("xxaayy"); got != 1 {
		t.Errorf("First = %d, want 1", got)
	}
	if got := ac.First("zzz"); got != -1 {
		t.Errorf("First on miss = %d", got)
	}
}

func TestAhoCorasickEmptyAndDuplicates(t *testing.T) {
	ac := NewAhoCorasick([]string{"", "x", "x", "y"})
	if got := len(ac.Patterns()); got != 2 {
		t.Errorf("patterns kept = %d, want 2", got)
	}
	if ac.Contains("") {
		t.Error("empty text matched")
	}
	empty := NewAhoCorasick(nil)
	if empty.Contains("anything") || empty.First("x") != -1 || empty.FindAll("x") != nil {
		t.Error("empty automaton matched")
	}
}

// Property: the automaton agrees with the naive scanner on random inputs.
func TestAhoCorasickMatchesNaive(t *testing.T) {
	alphabet := []string{"pro", "xy", "il", "face", "book", ".", "/", "a", "b"}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func(patIdx []uint8, textIdx []uint8) bool {
		var pats []string
		for _, i := range patIdx {
			p := alphabet[int(i)%len(alphabet)] + alphabet[int(i/2)%len(alphabet)]
			pats = append(pats, p)
		}
		var sb strings.Builder
		for _, i := range textIdx {
			sb.WriteString(alphabet[int(i)%len(alphabet)])
		}
		text := sb.String()
		ac := NewAhoCorasick(pats)
		return ac.Contains(text) == ContainsNaive(pats, text)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAhoCorasickFindAllMatchesNaive(t *testing.T) {
	pats := []string{"ab", "bc", "abc", "cc", "b"}
	ac := NewAhoCorasick(pats)
	texts := []string{"abcc", "xbx", "", "ccc", "aabbcc", "abcabc"}
	for _, text := range texts {
		got := ac.FindAll(text)
		var want []int
		for i, p := range pats {
			if indexOf(text, p) >= 0 {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Errorf("FindAll(%q) = %v, want %v", text, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("FindAll(%q) = %v, want %v", text, got, want)
			}
		}
	}
}

func TestSuffixSet(t *testing.T) {
	s := NewSuffixSet([]string{"skype.com", ".Metacafe.com", "il", ""})
	cases := []struct {
		host string
		want bool
		via  string
	}{
		{"skype.com", true, "skype.com"},
		{"download.skype.com", true, "skype.com"},
		{"notskype.com", false, ""},
		{"www.metacafe.com", true, "metacafe.com"},
		{"panet.co.il", true, "il"},
		{"il", true, "il"},
		{"ilx", false, ""},
		{"", false, ""},
	}
	for _, tc := range cases {
		via, got := s.Match(tc.host)
		if got != tc.want || via != tc.via {
			t.Errorf("Match(%q) = %q,%v want %q,%v", tc.host, via, got, tc.via, tc.want)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSuffixSetAdd(t *testing.T) {
	s := NewSuffixSet(nil)
	if s.Contains("x.com") {
		t.Error("empty set matched")
	}
	s.Add("X.com")
	if !s.Contains("a.x.com") {
		t.Error("added suffix not matched")
	}
	if got := len(s.Suffixes()); got != 1 {
		t.Errorf("Suffixes len = %d", got)
	}
}

// Property: Match(host) agrees with a naive suffix check.
func TestSuffixSetMatchesNaive(t *testing.T) {
	suffixes := []string{"a.com", "b.org", "il", "c.co.il"}
	s := NewSuffixSet(suffixes)
	naive := func(host string) bool {
		for _, suf := range suffixes {
			if host == suf || strings.HasSuffix(host, "."+suf) {
				return true
			}
		}
		return false
	}
	labels := []string{"a", "b", "c", "com", "org", "il", "co"}
	if err := quick.Check(func(idx []uint8) bool {
		parts := make([]string, 0, len(idx)%5+1)
		for _, i := range idx {
			parts = append(parts, labels[int(i)%len(labels)])
			if len(parts) >= 5 {
				break
			}
		}
		host := strings.Join(parts, ".")
		return s.Contains(host) == naive(host)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAhoCorasickContains(b *testing.B) {
	ac := NewAhoCorasick([]string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"})
	text := "www.facebook.com/plugins/like.php?href=http%3A%2F%2Fexample.com&layout=standard"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ac.Contains(text)
	}
}

func BenchmarkNaiveContains(b *testing.B) {
	pats := []string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"}
	text := "www.facebook.com/plugins/like.php?href=http%3A%2F%2Fexample.com&layout=standard"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ContainsNaive(pats, text)
	}
}

func BenchmarkSuffixSetMatch(b *testing.B) {
	domains := make([]string, 0, 105)
	for i := 0; i < 105; i++ {
		domains = append(domains, strings.Repeat("d", i%8+1)+".example"+string(rune('a'+i%26))+".com")
	}
	s := NewSuffixSet(domains)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Contains("deep.sub.domain.dddd.examplec.com")
	}
}
