// Command censorlyzer reproduces the paper's evaluation: it runs any (or
// all) of the table/figure analyses over a Blue Coat log corpus and prints
// paper-style output.
//
// The corpus either comes from log files previously written by cmd/syngen
// (-input, comma-separated paths) or is synthesized in memory (-requests).
// Either way -seed must match the corpus seed, because the Tor consensus
// and the category database are derived from it.
//
// Usage:
//
//	censorlyzer -requests 1000000 -seed 1 -exp all
//	censorlyzer -input sg42.csv,sg43.csv -seed 1 -exp table4,fig8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/pipeline"
	"syriafilter/internal/policy"
	"syriafilter/internal/prober"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/report"
	"syriafilter/internal/synth"
)

func main() {
	var (
		input    = flag.String("input", "", "comma-separated log files (empty: synthesize in memory)")
		requests = flag.Int("requests", 1_000_000, "synthetic corpus size")
		seed     = flag.Uint64("seed", 1, "corpus seed (must match the generator that produced -input)")
		exps     = flag.String("exp", "all", "comma-separated experiment ids (table1..table15, fig1..fig10, https, bt, gcache) or 'all'")
		workers  = flag.Int("workers", 0, "analysis workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	selected := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]

	// Subset selection: instantiate only the metric modules the requested
	// experiments read, so producing one table does not pay for all of
	// them. "all" (or an unknown id, reported below) runs the full engine.
	var metrics []string
	if !all {
		var ids []string
		for _, exp := range experiments {
			if selected[exp.id] {
				ids = append(ids, exp.id)
			}
		}
		if len(ids) > 0 {
			mods, err := core.ModulesFor(ids...)
			if err != nil {
				// An id known to this binary but not to core's experiment
				// table: run the full engine so output stays correct, but
				// say that the subset optimization was lost.
				fmt.Fprintf(os.Stderr, "censorlyzer: subset selection disabled (%v); running the full engine\n", err)
			} else {
				metrics = mods
			}
		}
	}

	gen, err := synth.New(synth.Config{Seed: *seed, TotalRequests: *requests})
	if err != nil {
		fatal(err)
	}
	an, err := analyze(gen, *input, *seed, *workers, metrics)
	if err != nil {
		fatal(err)
	}

	ran := 0
	for _, exp := range experiments {
		if all || selected[exp.id] {
			fmt.Printf("\n### %s — %s\n\n", exp.id, exp.title)
			exp.run(an, gen)
			ran++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known ids:\n", *exps)
		for _, exp := range experiments {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", exp.id, exp.title)
		}
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "censorlyzer:", err)
	os.Exit(1)
}

// analyze builds the Analyzer from files or by synthesizing the corpus.
// metrics restricts the engine to a module subset (nil = all); input
// files are decoded with one scanner goroutine per file feeding the
// worker pool.
func analyze(gen *synth.Generator, input string, seed uint64, workers int, metrics []string) (*core.Analyzer, error) {
	newAcc := func() *core.Analyzer {
		a, err := core.NewAnalyzerFor(core.Options{
			Categories: gen.CategoryDB(),
			Consensus:  gen.Consensus(),
			TitleDB:    bittorrent.NewTitleDB(),
		}, metrics...)
		if err != nil {
			fatal(err)
		}
		return a
	}
	if input == "" {
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: seed, Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		an := newAcc()
		var rec logfmt.Record
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			an.Observe(&rec)
		}
		return an, nil
	}
	var paths []string
	for _, path := range strings.Split(input, ",") {
		paths = append(paths, strings.TrimSpace(path))
	}
	return pipeline.RunFiles(paths, workers,
		newAcc,
		func(a *core.Analyzer, r *logfmt.Record) { a.Observe(r) },
		func(dst, src *core.Analyzer) { dst.Merge(src) },
	)
}

type experiment struct {
	id    string
	title string
	run   func(*core.Analyzer, *synth.Generator)
}

func aug(day, hour int) int64 {
	return time.Date(2011, 8, day, hour, 0, 0, 0, time.UTC).Unix()
}

var experiments = []experiment{
	{"table1", "Datasets description", func(a *core.Analyzer, _ *synth.Generator) {
		tbl := report.NewTable("Table 1", "Dataset", "# Requests")
		for _, d := range a.Table1() {
			tbl.Row(d.ID.String(), d.Requests)
		}
		fmt.Print(tbl)
	}},
	{"table3", "Decisions and exceptions per dataset", func(a *core.Analyzer, _ *synth.Generator) {
		t3 := a.Table3()
		tbl := report.NewTable("Table 3", "Exception", "Class", "Full", "%", "Sample", "User", "Denied")
		full := t3[core.DFull]
		for ex := 0; ex < logfmt.NumExceptions; ex++ {
			e := logfmt.ExceptionID(ex)
			tbl.Row(e.String(), e.Class().String(),
				full.ByException[ex],
				report.Percent(sfrac(full.ByException[ex], full.Total)),
				t3[core.DSample].ByException[ex],
				t3[core.DUser].ByException[ex],
				t3[core.DDenied].ByException[ex])
		}
		tbl.Row("PROXIED (total)", "proxied", full.Proxied,
			report.Percent(sfrac(full.Proxied, full.Total)),
			t3[core.DSample].Proxied, t3[core.DUser].Proxied, t3[core.DDenied].Proxied)
		fmt.Print(tbl)
	}},
	{"table4", "Top-10 domains (allowed and censored)", func(a *core.Analyzer, _ *synth.Generator) {
		allowed, censored := a.TopDomains(10)
		tbl := report.NewTable("Table 4", "Allowed domain", "# Req", "%", "", "Censored domain", "# Req", "%")
		for i := 0; i < 10; i++ {
			var row [8]interface{}
			for j := range row {
				row[j] = ""
			}
			if i < len(allowed) {
				row[0], row[1], row[2] = allowed[i].Domain, allowed[i].Count, report.Percent(allowed[i].Share)
			}
			if i < len(censored) {
				row[4], row[5], row[6] = censored[i].Domain, censored[i].Count, report.Percent(censored[i].Share)
			}
			tbl.Row(row[:7]...)
		}
		fmt.Print(tbl)
	}},
	{"table5", "Top censored domains, Aug 3 6am-12pm", func(a *core.Analyzer, _ *synth.Generator) {
		for _, win := range a.Table5(aug(3, 6), aug(3, 12), 2*3600, 10) {
			from := time.Unix(win.FromUnix, 0).UTC().Format("15:04")
			to := time.Unix(win.ToUnix, 0).UTC().Format("15:04")
			tbl := report.NewTable(fmt.Sprintf("Table 5 window %s-%s", from, to), "Domain", "%")
			for _, row := range win.Top {
				tbl.Row(row.Domain, report.Percent(row.Share))
			}
			fmt.Print(tbl)
			fmt.Println()
		}
	}},
	{"table6", "Cosine similarity of censored domains across proxies", func(a *core.Analyzer, _ *synth.Generator) {
		m := a.ProxySimilarity()
		headers := []string{""}
		for sg := 42; sg <= 48; sg++ {
			headers = append(headers, fmt.Sprintf("SG-%d", sg))
		}
		tbl := report.NewTable("Table 6", headers...)
		for i, row := range m {
			cells := []interface{}{fmt.Sprintf("SG-%d", 42+i)}
			for _, v := range row {
				cells = append(cells, v)
			}
			tbl.Row(cells...)
		}
		fmt.Print(tbl)
		labels := a.ProxyCategoryLabels()
		fmt.Println("\nDefault cs-categories labels:")
		for i, l := range labels {
			fmt.Printf("  SG-%d: %q\n", 42+i, l)
		}
	}},
	{"table7", "Top policy_redirect hosts", func(a *core.Analyzer, _ *synth.Generator) {
		tbl := report.NewTable("Table 7", "cs_host", "# requests", "%")
		for _, row := range a.RedirectHosts(5) {
			tbl.Row(row.Domain, row.Count, report.Percent(row.Share))
		}
		fmt.Print(tbl)
	}},
	{"table8", "Suspected URL-censored domains", func(a *core.Analyzer, _ *synth.Generator) {
		d := a.DiscoverFilters(0)
		tbl := report.NewTable(fmt.Sprintf("Table 8 (all %d suspected; top 15 shown)", len(d.Domains)),
			"Domain", "Censored", "Allowed", "Proxied")
		for i, sd := range d.Domains {
			if i >= 15 {
				break
			}
			tbl.Row(sd.Domain, sd.Censored, sd.Allowed, sd.Proxied)
		}
		fmt.Print(tbl)
	}},
	{"table9", "Censored domain categories", func(a *core.Analyzer, _ *synth.Generator) {
		d := a.DiscoverFilters(0)
		tbl := report.NewTable("Table 9", "Category", "# Domains", "Censored requests")
		for _, row := range a.Table9(d) {
			tbl.Row(row.Category, row.Domains, row.Requests)
		}
		fmt.Print(tbl)
	}},
	{"table10", "Censored keywords", func(a *core.Analyzer, _ *synth.Generator) {
		d := a.DiscoverFilters(0)
		tbl := report.NewTable("Table 10", "Keyword", "Censored", "Allowed", "Proxied")
		for _, kw := range d.Keywords {
			tbl.Row(kw.Keyword, kw.Censored, kw.Allowed, kw.Proxied)
		}
		fmt.Print(tbl)
	}},
	{"table11", "Censorship ratio per country (IP-literal hosts)", func(a *core.Analyzer, _ *synth.Generator) {
		tbl := report.NewTable("Table 11", "Country", "Ratio", "# Censored", "# Allowed")
		for _, row := range a.CountryRatios() {
			tbl.Row(row.Country, report.Percent(row.Ratio), row.Censored, row.Allowed)
		}
		fmt.Print(tbl)
	}},
	{"table12", "Top censored Israeli subnets", func(a *core.Analyzer, _ *synth.Generator) {
		tbl := report.NewTable("Table 12", "Subnet", "Cens req", "Cens IPs", "Allow req", "Allow IPs", "Prox req", "Prox IPs")
		for _, row := range a.IsraeliSubnets() {
			tbl.Row(row.Subnet, row.CensoredReqs, row.CensoredIPs,
				row.AllowedReqs, row.AllowedIPs, row.ProxiedReqs, row.ProxiedIPs)
		}
		fmt.Print(tbl)
	}},
	{"table13", "Censorship across social networks", func(a *core.Analyzer, _ *synth.Generator) {
		tbl := report.NewTable("Table 13 (top 10)", "OSN", "Censored", "Allowed", "Proxied")
		for i, row := range a.SocialNetworks() {
			if i >= 10 {
				break
			}
			tbl.Row(row.Domain, row.Censored, row.Allowed, row.Proxied)
		}
		fmt.Print(tbl)
	}},
	{"table14", "Blocked Facebook pages (custom category)", func(a *core.Analyzer, _ *synth.Generator) {
		tbl := report.NewTable("Table 14", "Facebook page", "# Censored", "# Allowed", "# Proxied")
		for _, row := range a.FacebookPages() {
			tbl.Row(row.Page, row.Censored, row.Allowed, row.Proxied)
		}
		fmt.Print(tbl)
	}},
	{"table15", "Censored Facebook social-plugin elements", func(a *core.Analyzer, _ *synth.Generator) {
		tbl := report.NewTable("Table 15", "Element", "Censored", "share of fb censored", "Allowed", "Proxied")
		for _, row := range a.SocialPlugins(10) {
			tbl.Row(row.Path, row.Censored, report.Percent(row.ShareOfFBCensored), row.Allowed, row.Proxied)
		}
		fmt.Print(tbl)
	}},
	{"fig1", "Destination port distribution", func(a *core.Analyzer, _ *synth.Generator) {
		allowed, censored := a.PortDistribution()
		printPorts := func(name string, pcs []core.PortCount) {
			labels := make([]string, 0, 8)
			values := make([]float64, 0, 8)
			for i, pc := range pcs {
				if i >= 8 {
					break
				}
				labels = append(labels, fmt.Sprint(pc.Port))
				values = append(values, float64(pc.Count))
			}
			fmt.Print(report.Series("Fig 1 — "+name, labels, values, 40))
		}
		printPorts("allowed ports", allowed)
		fmt.Println()
		printPorts("censored ports", censored)
	}},
	{"fig2", "Requests-per-domain distribution (power law)", func(a *core.Analyzer, _ *synth.Generator) {
		for _, s := range a.DomainFreqDistribution() {
			fmt.Printf("Fig 2 — %s: %d distinct counts, fitted alpha %.2f\n",
				s.Class, len(s.Points), s.Alpha)
			show := s.Points
			if len(show) > 8 {
				show = show[:8]
			}
			for _, p := range show {
				fmt.Printf("  %8d requests -> %6d domains\n", p[0], p[1])
			}
		}
	}},
	{"fig3", "Category distribution of censored traffic", func(a *core.Analyzer, _ *synth.Generator) {
		rows := a.CensoredCategories(false)
		labels := make([]string, 0, len(rows))
		values := make([]float64, 0, len(rows))
		for i, r := range rows {
			if i >= 12 {
				break
			}
			labels = append(labels, r.Category)
			values = append(values, r.Share*100)
		}
		fmt.Print(report.Series("Fig 3 — censored categories (% of censored)", labels, values, 40))
	}},
	{"fig4", "Per-user censorship (Duser)", func(a *core.Analyzer, _ *synth.Generator) {
		rep := a.UserAnalysis()
		fmt.Printf("users: %d, censored users: %d (%.2f%%)\n",
			rep.TotalUsers, rep.CensoredUsers,
			100*float64(rep.CensoredUsers)/float64(max(1, rep.TotalUsers)))
		fmt.Printf("mean requests/user: censored %.1f vs others %.1f\n",
			rep.MeanActivityCensored, rep.MeanActivityOthers)
		fmt.Printf("share with >100 requests: censored %.1f%% vs others %.1f%%\n",
			100*rep.ShareActiveCensored, 100*rep.ShareActiveOthers)
		labels := make([]string, len(rep.CensoredPerUser))
		values := make([]float64, len(rep.CensoredPerUser))
		for i, n := range rep.CensoredPerUser {
			labels[i] = fmt.Sprintf("%d", i+1)
			values[i] = float64(n)
		}
		fmt.Print(report.Series("Fig 4a — censored requests per censored user", labels, values, 40))
	}},
	{"fig5", "Censored/allowed traffic over Aug 1-6", func(a *core.Analyzer, _ *synth.Generator) {
		series := a.TimeSeries(aug(1, 0), aug(7, 0))
		al := make([]float64, len(series))
		ce := make([]float64, len(series))
		for i, p := range series {
			al[i] = float64(p.Allowed)
			ce[i] = float64(p.Censored)
		}
		fmt.Println("Fig 5 — allowed (5-min slots, downsampled):")
		fmt.Println(report.Sparkline(report.Downsample(al, 72)))
		fmt.Println("Fig 5 — censored:")
		fmt.Println(report.Sparkline(report.Downsample(ce, 72)))
	}},
	{"fig6", "Relative Censored Volume, Aug 3", func(a *core.Analyzer, _ *synth.Generator) {
		pts := a.RCV(aug(3, 0), aug(4, 0))
		values := make([]float64, len(pts))
		for i, p := range pts {
			values[i] = p.RCV
		}
		fmt.Println("Fig 6 — RCV across Aug 3 (5-min slots):")
		fmt.Println(report.Sparkline(report.Downsample(values, 96)))
		// Peak hours summary.
		type hv struct {
			h int
			v float64
		}
		var hours []hv
		for h := 0; h < 24; h++ {
			sum, n := 0.0, 0
			for _, p := range pts {
				if int((p.Unix-aug(3, 0))/3600) == h {
					sum += p.RCV
					n++
				}
			}
			hours = append(hours, hv{h, sum / float64(max(1, n))})
		}
		sort.Slice(hours, func(i, j int) bool { return hours[i].v > hours[j].v })
		fmt.Printf("peak RCV hours: %02d:00 (%.4f), %02d:00 (%.4f), %02d:00 (%.4f)\n",
			hours[0].h, hours[0].v, hours[1].h, hours[1].v, hours[2].h, hours[2].v)
	}},
	{"fig7", "Per-proxy load and censored share", func(a *core.Analyzer, _ *synth.Generator) {
		tbl := report.NewTable("Fig 7", "Proxy", "Total", "Censored", "Censored share")
		for _, l := range a.ProxyLoads() {
			tbl.Row(fmt.Sprintf("SG-%d", l.SG), l.Total, l.Censored,
				report.Percent(sfrac(l.Censored, max64(1, l.Total))))
		}
		fmt.Print(tbl)
	}},
	{"fig8", "Tor traffic", func(a *core.Analyzer, _ *synth.Generator) {
		rep := a.TorAnalysis()
		fmt.Printf("Tor requests: %d to %d relays (Torhttp %.1f%%, Toronion %.1f%%)\n",
			rep.Total, rep.Relays,
			100*sfrac(rep.HTTP, max64(1, rep.Total)), 100*sfrac(rep.Onion, max64(1, rep.Total)))
		fmt.Printf("censored: %d (%.2f%%), tcp errors: %d (%.1f%%)\n",
			rep.Censored, 100*sfrac(rep.Censored, max64(1, rep.Total)),
			rep.Errors, 100*sfrac(rep.Errors, max64(1, rep.Total)))
		for i, n := range rep.CensoredByProxy {
			if n > 0 {
				fmt.Printf("  censored on SG-%d: %d (%.1f%% of censored Tor)\n",
					42+i, n, 100*sfrac(n, max64(1, rep.Censored)))
			}
		}
		hourly := a.TorHourly(aug(1, 0), aug(7, 0))
		values := make([]float64, len(hourly))
		for i, h := range hourly {
			values[i] = float64(h.Total)
		}
		fmt.Println("Fig 8a — Tor requests/hour, Aug 1-6:")
		fmt.Println(report.Sparkline(values))
	}},
	{"fig9", "Tor re-censoring consistency (Rfilter)", func(a *core.Analyzer, _ *synth.Generator) {
		pts := a.RFilter(aug(1, 0), aug(7, 0))
		if pts == nil {
			fmt.Println("no censored Tor relays in this corpus")
			return
		}
		values := make([]float64, len(pts))
		below := 0
		for i, p := range pts {
			values[i] = p.RFilter
			if p.AllowedSeen && p.RFilter < 1 {
				below++
			}
		}
		fmt.Println("Fig 9 — Rfilter per hour (1 = fully re-censored):")
		fmt.Println(report.Sparkline(values))
		fmt.Printf("hours where censored relays were re-allowed: %d of %d\n", below, len(pts))
	}},
	{"fig10", "Anonymizer services", func(a *core.Analyzer, _ *synth.Generator) {
		rep := a.Anonymizers()
		fmt.Printf("anonymizer hosts: %d (%d never filtered, %.1f%%), %d requests\n",
			rep.Hosts, rep.NeverFiltered,
			100*float64(rep.NeverFiltered)/float64(max(1, rep.Hosts)), rep.Requests)
		fmt.Println("Fig 10a — CDF of requests per never-filtered host:")
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Printf("  P%.0f: %.0f requests\n", q*100, rep.RequestsCDF.Quantile(q))
		}
		if rep.FilteredHosts > 0 {
			fmt.Printf("Fig 10b — filtered hosts: %d; allowed/censored ratio median %.2f\n",
				rep.FilteredHosts, rep.RatioCDF.Quantile(0.5))
		}
	}},
	{"https", "HTTPS traffic (§4)", func(a *core.Analyzer, _ *synth.Generator) {
		rep := a.HTTPSAnalysis()
		fmt.Printf("HTTPS/CONNECT requests: %d (%.3f%% of traffic)\n", rep.Total, 100*rep.ShareOfTraffic)
		fmt.Printf("censored: %d (%.2f%% of HTTPS); IP-literal destinations: %d (%.1f%% of censored)\n",
			rep.Censored, 100*rep.CensoredShare, rep.CensoredIPLiteral, 100*rep.IPLiteralShare)
	}},
	{"bt", "BitTorrent (§7.3)", func(a *core.Analyzer, _ *synth.Generator) {
		d := a.DiscoverFilters(0)
		kws := make([]string, 0, len(d.Keywords))
		for _, kw := range d.Keywords {
			kws = append(kws, kw.Keyword)
		}
		rep := a.BitTorrent(kws)
		fmt.Printf("announces: %d from %d peers for %d contents\n", rep.Announces, rep.Users, rep.Contents)
		fmt.Printf("allowed: %.2f%%; censored: %d\n", 100*rep.AllowedShare, rep.Censored)
		fmt.Printf("titles resolved: %d (%.1f%%); with blacklisted keywords: %d; anti-censorship tools: %d\n",
			rep.Resolved, 100*rep.ResolvedShare, rep.KeywordTitles, rep.ToolTitles)
		tbl := report.NewTable("Top trackers", "Tracker", "Announces")
		for _, tr := range rep.TopTrackers {
			tbl.Row(tr.Domain, tr.Count)
		}
		fmt.Print(tbl)
	}},
	{"gcache", "Google cache (§7.4)", func(a *core.Analyzer, _ *synth.Generator) {
		rep := a.GoogleCache()
		fmt.Printf("cache requests: %d, censored: %d\n", rep.Total, rep.Censored)
	}},
	{"probing", "Probing-based measurement vs log analysis (§1 claims)", func(a *core.Analyzer, gen *synth.Generator) {
		// A probing campaign over a classic candidate list: popular sites
		// plus the suspected-blocked sites a prober might know about.
		candidates := []string{
			"google.com", "facebook.com", "twitter.com", "youtube.com",
			"wikipedia.org", "amazon.com", "metacafe.com", "skype.com",
			"badoo.com", "netlog.com", "bbc.co.uk", "aljazeera.net",
			"aawsat.com", "panet.co.il", "linkedin.com", "flickr.com",
		}
		pr := prober.New(gen.Engine())
		rep := pr.Run(prober.HomepageProbes(candidates))
		fmt.Printf("probes: %d, blocked: %d, blocked hosts: %v\n",
			rep.Probes, rep.Blocked, rep.BlockedHosts)

		kwCov := prober.KeywordCoverage(rep, gen.Ruleset().Keywords)
		domCov := prober.DomainCoverage(rep, gen.Ruleset().Domains)
		fmt.Printf("probing keyword recall: %.0f%% (missed: %v)\n",
			100*kwCov.Recall(), kwCov.MissedRules)
		fmt.Printf("probing domain recall:  %.0f%% (%d of %d rules witnessed)\n",
			100*domCov.Recall(), domCov.FoundRules, domCov.ReferenceRules)

		d := a.DiscoverFilters(0)
		kws := map[string]bool{}
		for _, kw := range d.Keywords {
			kws[kw.Keyword] = true
		}
		logKw := 0
		for _, kw := range gen.Ruleset().Keywords {
			if kws[kw] {
				logKw++
			}
		}
		fmt.Printf("log-analysis keyword recall: %.0f%% — the §1 advantage of logs over probing\n",
			100*float64(logKw)/float64(len(gen.Ruleset().Keywords)))
		full := a.Dataset(core.DFull)
		fmt.Printf("extent: probing cannot measure traffic volume; logs show %s of requests censored\n",
			report.Percent(sfrac(full.Censored(), full.Total)))
	}},
	{"groundtruth", "Recovered policy vs ground truth", func(a *core.Analyzer, gen *synth.Generator) {
		d := a.DiscoverFilters(0)
		rs := gen.Ruleset()
		truth := map[string]bool{}
		for _, kw := range rs.Keywords {
			truth[kw] = true
		}
		hits := 0
		for _, kw := range d.Keywords {
			if truth[kw.Keyword] {
				hits++
			}
		}
		fmt.Printf("keyword recall: %d/%d ground-truth keywords recovered; %d extra tokens\n",
			hits, len(rs.Keywords), len(d.Keywords)-hits)
		blocked := 0
		engine := gen.Engine()
		for _, sd := range d.Domains {
			if strings.HasPrefix(sd.Domain, ".") {
				blocked++
				continue
			}
			r := policy.Request{Host: sd.Domain, Path: "/", Scheme: "http", Method: "GET", Port: 80}
			if engine.Evaluate(&r).Action != policy.Allow {
				blocked++
			}
		}
		fmt.Printf("domain precision: %d/%d suspected domains are truly blocked\n", blocked, len(d.Domains))
	}},
}

func sfrac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
