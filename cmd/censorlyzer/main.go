// Command censorlyzer reproduces the paper's evaluation: it runs any (or
// all) of the table/figure analyses over a Blue Coat log corpus and prints
// paper-style output (or, with -json, the same machine-readable documents
// cmd/censord serves over HTTP).
//
// The corpus either comes from log files previously written by cmd/syngen
// (-input, comma-separated paths, gzip-transparent) or is synthesized in
// memory (-requests). Either way -seed must match the corpus seed, because
// the Tor consensus and the category database are derived from it.
//
// Usage:
//
//	censorlyzer -requests 1000000 -seed 1 -exp all
//	censorlyzer -input sg42.csv,sg43.csv.gz -seed 1 -exp table4,fig8
//	censorlyzer -exp table4 -json
//	censorlyzer -exp fig5 -from 2011-08-01 -to 2011-08-04
//	censorlyzer -list
//
// -from/-to (unix seconds, RFC3339 or 2006-01-02[THH:MM], half-open
// [from, to)) restrict the analysis to records inside the window — the
// same predicate cmd/censord's /v1/range endpoint evaluates, so a
// bucket-aligned window produces byte-identical -json output.
//
// -save-state/-load-state make batch runs incremental: -save-state
// writes the analyzed engine state (gzip-framed, crash-safe via
// temp-file + rename) after the run, and -load-state folds a previously
// saved state in before rendering — so tonight's logs extend
// yesterday's results without re-reading yesterday's corpus:
//
//	censorlyzer -input day1.csv -seed 1 -save-state state.ckpt.gz
//	censorlyzer -input day2.csv -seed 1 -load-state state.ckpt.gz -save-state state.ckpt.gz
//
// The loaded state must come from a run with the same -seed (the
// derived databases are configuration, not state) and a module subset
// covering this run's -exp selection.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/obs"
	"syriafilter/internal/pipeline"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/render"
	"syriafilter/internal/synth"
	"syriafilter/internal/timewin"
)

// logger carries the batch run's structured diagnostics (results go to
// stdout, diagnostics to stderr); main replaces it per the -log flags.
var logger = slog.Default()

func main() {
	var (
		input    = flag.String("input", "", "comma-separated log files (empty: synthesize in memory; gzip ok)")
		requests = flag.Int("requests", 1_000_000, "synthetic corpus size")
		seed     = flag.Uint64("seed", 1, "corpus seed (must match the generator that produced -input)")
		exps     = flag.String("exp", "all", "comma-separated experiment ids (table1..table15, fig1..fig10, https, bt, gcache) or 'all'")
		workers  = flag.Int("workers", 0, "analysis workers (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit one JSON document per experiment (the cmd/censord wire format)")
		list     = flag.Bool("list", false, "print the experiment ids and the metric modules each resolves to, then exit")
		fromF    = flag.String("from", "", "only analyze records at or after this time (unix seconds, RFC3339 or 2006-01-02[THH:MM])")
		toF      = flag.String("to", "", "only analyze records before this time (exclusive, same formats)")
		loadF    = flag.String("load-state", "", "fold a previously saved engine state in before rendering (incremental runs)")
		saveF    = flag.String("save-state", "", "write the final engine state to this file (gzip; temp-file + rename)")
		sketch   = flag.Bool("sketch", false, "bounded-memory mode: users/domains/subnets/tokens run on HLL + top-k sketches (results marked approx)")
		sketchP  = flag.Uint("sketch-precision", core.DefaultSketchPrecision, "HLL precision p with -sketch (2^p registers, ~1.04/sqrt(2^p) error)")
		sketchK  = flag.Int("sketch-topk", core.DefaultSketchTopK, "space-saving capacity per frequency table with -sketch")
		logLevel = flag.String("log-level", "info", "diagnostic log verbosity: debug, info, warn or error")
		logFmt   = flag.String("log-format", "text", "diagnostic log encoding: text or json")
		version  = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()

	if *version {
		b := obs.ReadBuild()
		fmt.Printf("censorlyzer %s (%s, rev %s)\n", b.Version, b.GoVersion, b.VCSRevision)
		return
	}

	l, err := obs.NewLogger(os.Stderr, *logLevel, *logFmt)
	if err != nil {
		fatal(err)
	}
	logger = l
	slog.SetDefault(l)

	if *sketch {
		sketchOpt = core.SketchOptions{Enabled: true, Precision: uint8(*sketchP), TopK: *sketchK}
	}

	win, err := timewin.ParseWindow(*fromF, *toF)
	if err != nil {
		fatal(err)
	}

	if *list {
		listExperiments(os.Stdout)
		return
	}

	selected := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]

	// Subset selection: instantiate only the metric modules the requested
	// experiments read, so producing one table does not pay for all of
	// them. "all" (or an unknown id, reported below) runs the full engine.
	var metrics []string
	if !all {
		var ids []string
		for _, id := range render.Order() {
			if selected[id] {
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			mods, err := core.ModulesFor(ids...)
			if err != nil {
				// An id known to this binary but not to core's experiment
				// table: run the full engine so output stays correct, but
				// say that the subset optimization was lost.
				logger.Warn("subset selection disabled; running the full engine", "err", err)
			} else {
				metrics = mods
			}
		}
	}

	gen, err := synth.New(synth.Config{Seed: *seed, TotalRequests: *requests})
	if err != nil {
		fatal(err)
	}
	an, err := analyze(gen, *input, *seed, *workers, metrics, win)
	if err != nil {
		fatal(err)
	}

	if *loadF != "" {
		// Fold the saved state in through a fresh same-subset analyzer:
		// UnmarshalState replaces state, Merge accumulates it.
		loaded, err := core.NewAnalyzerFor(analyzerOptions(gen), metrics...)
		if err != nil {
			fatal(err)
		}
		if err := readStateFile(*loadF, loaded.Engine); err != nil {
			fatal(err)
		}
		loaded.Merge(an)
		an = loaded
	}
	if *saveF != "" {
		if err := writeStateFile(*saveF, an.Engine); err != nil {
			fatal(err)
		}
		logger.Info("saved engine state", "path", *saveF)
	}

	cx := render.Context{An: an, Gen: gen}
	ran := 0
	for _, id := range render.Order() {
		if !all && !selected[id] {
			continue
		}
		doc, err := render.Render(id, cx)
		if err != nil {
			fatal(err)
		}
		ran++
		if *jsonOut {
			// One document per line — render.EncodeJSON is the shared
			// encoder, so this is byte-identical to what cmd/censord's
			// /v1/experiments/{id} endpoint serves (and caches).
			b, err := render.EncodeJSON(doc)
			if err != nil {
				fatal(err)
			}
			if _, err := os.Stdout.Write(b); err != nil {
				fatal(err)
			}
			continue
		}
		fmt.Printf("\n### %s — %s\n\n", id, doc.Title)
		fmt.Print(doc.Text())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matched %q; known ids:\n", *exps)
		listExperiments(os.Stderr)
		os.Exit(2)
	}
}

// listExperiments prints every experiment id, its title, and the metric
// modules it resolves to via core.ModulesFor.
func listExperiments(w *os.File) {
	for _, id := range render.Order() {
		mods, err := core.ModulesFor(id)
		if err != nil {
			mods = []string{"?"}
		}
		fmt.Fprintf(w, "%-12s %-55s %s\n", id, render.Title(id), strings.Join(mods, ","))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "censorlyzer:", err)
	os.Exit(1)
}

// sketchOpt carries the -sketch flags into every analyzer built by this
// run (main sets it before any engine exists).
var sketchOpt core.SketchOptions

// analyzerOptions derives the engine configuration from the generator;
// saved state carries accumulated counts only, so -load-state requires
// the same configuration (same -seed, same -sketch mode) to be
// meaningful (an exact v1 state does load into a sketched engine, by
// replay).
func analyzerOptions(gen *synth.Generator) core.Options {
	return core.Options{
		Categories: gen.CategoryDB(),
		Consensus:  gen.Consensus(),
		TitleDB:    bittorrent.NewTitleDB(),
		Sketches:   sketchOpt,
	}
}

// readStateFile loads an engine state written by writeStateFile
// (gzip-transparent via pipeline.OpenReader, so a raw state stream also
// loads).
func readStateFile(path string, e *core.Engine) error {
	r, closer, err := pipeline.OpenReader(path)
	if err != nil {
		return err
	}
	defer closer.Close()
	if err := e.ReadState(r); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// writeStateFile writes the engine state gzip-framed, via temp-file +
// rename so an interrupted run never clobbers the previous state.
func writeStateFile(path string, e *core.Engine) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	zw := gzip.NewWriter(tmp)
	err = e.WriteState(zw)
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if serr := tmp.Sync(); err == nil {
		err = serr
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// analyze builds the Analyzer from files or by synthesizing the corpus.
// metrics restricts the engine to a module subset (nil = all); input
// files are block-ingested — line splitting and parsing spread across
// the worker pool, not one decode goroutine per file — so even a single
// large file scans on every core. Records outside win are skipped (the
// zero window keeps everything).
func analyze(gen *synth.Generator, input string, seed uint64, workers int, metrics []string, win timewin.Window) (*core.Analyzer, error) {
	newAcc := func() *core.Analyzer {
		a, err := core.NewAnalyzerFor(analyzerOptions(gen), metrics...)
		if err != nil {
			fatal(err)
		}
		return a
	}
	if input == "" {
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: seed, Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		an := newAcc()
		var rec logfmt.Record
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			if !win.Contains(rec.Time) {
				continue
			}
			an.Observe(&rec)
		}
		return an, nil
	}
	var paths []string
	for _, path := range strings.Split(input, ",") {
		paths = append(paths, strings.TrimSpace(path))
	}
	an, stats, err := pipeline.RunFilesBlocks(paths, workers,
		newAcc,
		func(a *core.Analyzer, r *logfmt.Record) {
			if win.Contains(r.Time) {
				a.Observe(r)
			}
		},
		func(dst, src *core.Analyzer) { dst.Merge(src) },
	)
	if err != nil {
		return nil, err
	}
	if stats.Malformed > 0 {
		logger.Warn("skipped malformed lines", "count", stats.Malformed)
	}
	return an, nil
}
