// Command censord is the live monitoring daemon: it continuously ingests
// Blue Coat log records into a sharded metric-engine store and serves
// every experiment of the paper's evaluation over HTTP, from immutable
// point-in-time snapshots.
//
// Log sources: files given with -input are ingested at boot (one scanner
// goroutine per file, gzip-transparent); a directory given with -watch
// is polled for new files, which are ingested as they appear; and
// POST /v1/ingest accepts log batches while serving.
//
// -seed and -requests must match the syngen invocation that produced the
// corpus, because the category database, Tor consensus and ground-truth
// ruleset are derived from them (exactly like cmd/censorlyzer).
//
// Usage:
//
//	censord -addr :8080 -input logs/sg-42.csv,logs/sg-43.csv.gz -seed 1
//	censord -addr :8080 -watch spool/ -watch-every 5s -seed 1
//
// Then:
//
//	curl localhost:8080/healthz          # liveness: ok whenever up
//	curl localhost:8080/readyz           # readiness: 503 until boot completes
//	curl localhost:8080/metrics          # Prometheus text exposition
//	curl localhost:8080/debug/traces     # flight recorder: slow/error traces
//	curl localhost:8080/v1/tables/4
//	curl localhost:8080/v1/figures/8?format=text
//	curl 'localhost:8080/v1/range/table4?from=2011-08-01&to=2011-08-04'
//	curl 'localhost:8080/v1/range/fig5?from=2011-08-01&to=2011-08-07&step=24h'
//	curl 'localhost:8080/v1/sync?ids=table4&timeout=30s'   # long-poll for changes
//	curl -X POST --data-binary @more.csv localhost:8080/v1/ingest?refresh=1
//
// The read path is cost-proportional to change, not to poll rate:
// rendered doc/range responses are cached by snapshot generation
// (-doc-cache-bytes budgets the cache; censord_doccache_* meters it),
// every doc endpoint serves a strong ETag and answers If-None-Match
// revalidation with a body-less 304, responses gzip on
// Accept-Encoding, and GET /v1/sync long-polls for changes: it parks
// (bounded by -sync-max-parked, 429 beyond) until a snapshot cut
// changes something, then returns only the changed experiments — as
// row-level deltas when possible — plus a resume token. Background
// snapshot ticks that find no new records do not bump the generation,
// so an idle daemon serves entirely from cache and keeps pollers
// parked.
//
// The HTTP listener comes up immediately; checkpoint restore and boot
// ingest run behind it with /readyz reporting "restoring" then
// "loading" (503) until the first snapshot is cut, and "draining"
// (503) again from SIGTERM until exit so load balancers stop routing
// before the queues flush. The daemon is hardened for unattended
// multi-week runs: explicit HTTP read/write/idle timeouts
// (-http-*-timeout), a POST /v1/ingest body cap (-max-body, 413
// beyond it), and bounded ingest backpressure — a shard queue stalled
// past -shed-after fails the request with 429 + Retry-After instead
// of hanging the handler (censord_ingest_shed_total counts these).
// POST /v1/checkpoint cuts a checkpoint on demand when -checkpoint is
// set. Every request is traced (W3C traceparent honored, X-Request-ID
// derived otherwise): traces slower than -trace-slow (default 250ms)
// or errored are always retained in the in-memory flight recorder at
// GET /debug/traces, the rest sampled 1-in--trace-sample; -trace-slow 0
// disables tracing entirely. Logs are structured
// (log/slog) — -log-level selects verbosity, -log-format text|json the
// encoding — and every request is access-logged with an X-Request-ID.
// -debug-addr serves net/http/pprof on a second, separately bindable
// listener so profilers never share the public port.
//
// Ingested records are partitioned into -bucket wide time buckets (by
// record time, see internal/timewin), which is what /v1/range merges on
// demand; -retain bounds live memory by compacting old buckets into a
// frozen all-time tail.
//
// With -checkpoint the daemon survives restarts warm: it restores the
// newest decodable checkpoint generation at boot — when the newest is
// damaged it falls back one generation at a time (-keep-generations
// are retained on disk for exactly this), cold-booting with a logged
// warning only when nothing decodes — checkpoints every
// -checkpoint-every while serving, and cuts a final checkpoint on
// graceful shutdown after flushing every acknowledged ingest batch. On
// a warm restart do not re-pass the -input files the checkpoint already
// covers — state is additive:
//
//	censord -addr :8080 -input logs/... -seed 1 -checkpoint /var/lib/censord
//	# later, after a restart:
//	censord -addr :8080 -seed 1 -checkpoint /var/lib/censord
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/obs"
	"syriafilter/internal/obs/trace"
	"syriafilter/internal/serve"
	"syriafilter/internal/synth"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		input      = flag.String("input", "", "comma-separated log files ingested at boot (gzip ok)")
		watch      = flag.String("watch", "", "directory polled for new log files")
		watchEvery = flag.Duration("watch-every", 5*time.Second, "watch poll interval")
		seed       = flag.Uint64("seed", 1, "corpus seed (must match the generator that produced the logs)")
		requests   = flag.Int("requests", 1_000_000, "corpus size the generator was run with (shapes the derived databases)")
		exps       = flag.String("exp", "all", "comma-separated experiment ids to serve ('all' = every metric module)")
		shards     = flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS, capped at 16)")
		snapEvery  = flag.Duration("snapshot-every", 2*time.Second, "background snapshot rebuild period (0 = only on demand)")
		bucket     = flag.Duration("bucket", time.Hour, "time-partition bucket width for /v1/range queries")
		retain     = flag.Duration("retain", 30*24*time.Hour, "retention horizon: buckets older than the newest record by more than this are compacted into the frozen all-time tail (0 = keep every bucket live)")
		ckptDir    = flag.String("checkpoint", "", "checkpoint directory: restore state from it at boot (warm restart), checkpoint into it periodically and on graceful shutdown")
		ckptEvery  = flag.Duration("checkpoint-every", 5*time.Minute, "periodic checkpoint interval when -checkpoint is set (0 = only on shutdown)")
		sketch     = flag.Bool("sketch", false, "bounded-memory mode: users/domains/subnets/tokens run on HLL + top-k sketches (results marked approx)")
		sketchP    = flag.Uint("sketch-precision", core.DefaultSketchPrecision, "HLL precision p with -sketch (2^p registers, ~1.04/sqrt(2^p) error)")
		sketchK    = flag.Int("sketch-topk", core.DefaultSketchTopK, "space-saving capacity per frequency table with -sketch")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log encoding: text or json")
		debugAddr  = flag.String("debug-addr", "", "optional listen address serving /debug/pprof on its own listener (empty = disabled)")
		maxBody    = flag.Int64("max-body", 64<<20, "maximum POST /v1/ingest body size in wire bytes, 413 beyond it (0 = unbounded)")
		docCache   = flag.Int64("doc-cache-bytes", serve.DefaultDocCacheBytes, "rendered-doc cache budget: encoded doc/range responses are cached per snapshot generation and served as memcpy (0 = render every request)")
		syncParked = flag.Int("sync-max-parked", serve.DefaultSyncMaxParked, "maximum concurrently parked GET /v1/sync long-polls; excess polls shed with 429 + Retry-After")
		shedAfter  = flag.Duration("shed-after", serve.DefaultAddTimeout, "ingest load-shedding deadline: a shard queue full past this sheds the request with 429 instead of blocking the handler (negative = block forever)")
		readTO     = flag.Duration("http-read-timeout", 5*time.Minute, "http.Server read timeout (covers the whole request body)")
		writeTO    = flag.Duration("http-write-timeout", 5*time.Minute, "http.Server write timeout")
		idleTO     = flag.Duration("http-idle-timeout", 2*time.Minute, "http.Server keep-alive idle timeout")
		keepGens   = flag.Int("keep-generations", serve.DefaultKeepGenerations, "checkpoint generations kept on disk; restore falls back one generation at a time when the newest is damaged")
		traceSlow  = flag.Duration("trace-slow", trace.DefaultSlow, "flight-recorder slow threshold: traces at least this long (and errored traces) are always retained and logged (0 = disable tracing)")
		traceSmpl  = flag.Int("trace-sample", trace.DefaultSample, "flight-recorder sampling: 1 in N fast, error-free traces is retained alongside every slow/error trace")
		traceRing  = flag.Int("trace-ring", trace.DefaultRingSize, "flight-recorder capacity per retention class (slow/error vs sampled), per shard")
		version    = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()

	if *version {
		b := obs.ReadBuild()
		fmt.Printf("censord %s (%s, rev %s)\n", b.Version, b.GoVersion, b.VCSRevision)
		return
	}

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)
	build := obs.ReadBuild()
	logger.Info("censord starting", "version", build.Version,
		"go", build.GoVersion, "revision", build.VCSRevision, "dirty", build.Dirty)

	// The flight recorder is always on unless -trace-slow 0: tracing is
	// how a multi-week unattended run explains its own latency outliers
	// after the fact, and the disabled path is what it costs to keep it.
	var tracer *trace.Tracer
	if *traceSlow > 0 {
		tracer = trace.New(trace.Config{
			Slow:     *traceSlow,
			Sample:   *traceSmpl,
			RingSize: *traceRing,
			Logger:   logger,
		})
	}

	gen, err := synth.New(synth.Config{Seed: *seed, TotalRequests: *requests})
	if err != nil {
		fatal(err)
	}

	var metrics []string
	if *exps != "all" {
		var ids []string
		for _, id := range strings.Split(*exps, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
		if metrics, err = core.ModulesFor(ids...); err != nil {
			fatal(err)
		}
	}

	opt := core.Options{
		Categories: gen.CategoryDB(),
		Consensus:  gen.Consensus(),
		TitleDB:    bittorrent.NewTitleDB(),
	}
	if *sketch {
		opt = opt.WithSketches(uint8(*sketchP), *sketchK)
	}

	store, err := serve.NewStore(serve.Config{
		Options:         opt,
		Metrics:         metrics,
		Shards:          *shards,
		SnapshotEvery:   *snapEvery,
		Bucket:          *bucket,
		Retain:          *retain,
		AddTimeout:      *shedAfter,
		KeepGenerations: *keepGens,
		Logger:          logger,
		Tracer:          tracer,
	})
	if err != nil {
		fatal(err)
	}

	// The listener comes up before restore and boot ingest: /healthz and
	// /metrics answer immediately, /readyz holds 503 ("restoring", then
	// "loading") until the boot goroutine cuts the first snapshot.
	ready := serve.NewReadiness("restoring")
	stop := make(chan struct{})
	var loops sync.WaitGroup // watch + checkpoint loops, started once ready
	var boot sync.WaitGroup
	boot.Add(1)
	go func() {
		defer boot.Done()

		// Warm restart: fold the last good checkpoint back in before any
		// boot-time ingest. A missing manifest is a normal cold boot; a
		// damaged checkpoint is logged and ignored (cold boot) rather than
		// fatal — the daemon's job is to come back up.
		if *ckptDir != "" {
			switch info, err := store.Restore(*ckptDir); {
			case err == nil:
				logger.Info("checkpoint restored", "records", info.Records,
					"generation", info.Generation,
					"created", time.Unix(info.CreatedUnix, 0).UTC().Format(time.RFC3339))
			case errors.Is(err, serve.ErrNoCheckpoint):
				logger.Info("no checkpoint, cold boot", "dir", *ckptDir)
			default:
				logger.Warn("checkpoint restore failed, cold boot", "err", err)
			}
		}

		ready.Set("loading")
		seen := map[string]bool{}
		if *input != "" {
			var paths []string
			for _, path := range strings.Split(*input, ",") {
				path = strings.TrimSpace(path)
				paths = append(paths, path)
				// Cleaned, so the watch loop (which joins dir + name) does not
				// re-ingest a boot file spelled differently on the flag.
				seen[filepath.Clean(path)] = true
			}
			n, err := ingestFiles(logger, store, paths)
			if err != nil {
				fatal(err)
			}
			logger.Info("boot ingest complete", "records", n, "files", len(paths))
		}
		if _, err := store.Refresh(); err != nil {
			fatal(err)
		}
		ready.Set("ok")
		logger.Info("ready")

		if *watch != "" {
			loops.Add(1)
			go func() {
				defer loops.Done()
				store.WatchDir(*watch, *watchEvery, seen, stop)
			}()
			logger.Info("watching", "dir", *watch, "every", *watchEvery)
		}
		if *ckptDir != "" && *ckptEvery > 0 {
			loops.Add(1)
			go func() {
				defer loops.Done()
				checkpointLoop(logger, store, *ckptDir, *ckptEvery, stop)
			}()
			logger.Info("checkpointing", "dir", *ckptDir, "every", *ckptEvery)
		}
	}()

	opts := []serve.ServerOption{
		serve.WithLogger(logger), serve.WithReadiness(ready), serve.WithMaxBody(*maxBody),
		serve.WithDocCacheBytes(*docCache), serve.WithSyncMaxParked(*syncParked),
	}
	if *ckptDir != "" {
		dir := *ckptDir
		opts = append(opts, serve.WithCheckpoint(func(ctx context.Context) (serve.CheckpointInfo, error) {
			return store.CheckpointCtx(ctx, dir)
		}))
	}
	handler := serve.NewServer(store, gen, opts...)
	// Every timeout is explicit: an unattended daemon must shed stuck
	// peers (slow-loris headers, wedged uploads, dead keep-alives) on
	// its own instead of accumulating goroutines for weeks.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTO,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "shards", store.Stats().Shards,
		"bucket", *bucket, "retain", *retain, "snapshot_every", *snapEvery)

	// pprof lives on its own listener so profiles are reachable (and
	// firewallable) independently of the public API port, and never
	// routable from it. Explicit handlers, not DefaultServeMux: nothing
	// else can sneak onto this mux.
	var dsrv *http.Server
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dsrv = &http.Server{Addr: *debugAddr, Handler: dmux}
		go func() {
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener", "err", err)
			}
		}()
		logger.Info("pprof", "addr", *debugAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
		// Flip /readyz to 503 "draining" before anything else: load
		// balancers stop routing while in-flight requests and queued
		// ingest batches still drain normally.
		ready.Set("draining")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		if dsrv != nil {
			dsrv.Shutdown(ctx)
		}
		cancel()
	}
	boot.Wait() // an in-flight boot ingest finishes before the store closes
	close(stop)
	loops.Wait()
	if *ckptDir != "" {
		// Final checkpoint: the store flushes every acked batch before
		// cutting it, so a graceful shutdown persists everything
		// POST /v1/ingest acknowledged.
		info, err := store.CloseAndCheckpoint(*ckptDir)
		if err != nil {
			logger.Warn("final checkpoint failed", "err", err)
		} else {
			logger.Info("final checkpoint", "generation", info.Generation,
				"records", info.Records, "bytes", info.Bytes)
		}
	} else {
		store.Close()
	}
}

// checkpointLoop cuts a checkpoint every interval until stop closes
// (the final shutdown checkpoint is CloseAndCheckpoint's job).
func checkpointLoop(logger *slog.Logger, store *serve.Store, dir string, every time.Duration, stop <-chan struct{}) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			info, err := store.Checkpoint(dir)
			if err != nil {
				logger.Warn("checkpoint failed", "err", err)
				continue
			}
			logger.Info("checkpoint", "generation", info.Generation,
				"records", info.Records, "bytes", info.Bytes)
		}
	}
}

// ingestFiles feeds the paths into the store through the block-parallel
// path: one block-reader goroutine per file, line splitting and parsing
// spread across the worker pool, the store's shards parallelizing the
// analysis side.
func ingestFiles(logger *slog.Logger, store *serve.Store, paths []string) (uint64, error) {
	added, malformed, err := store.IngestFiles(paths, 0)
	if malformed > 0 {
		logger.Warn("skipped malformed lines", "count", malformed)
	}
	return added, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "censord:", err)
	os.Exit(1)
}
