// Command syngen synthesizes a Blue Coat log corpus: it generates the
// calibrated client workload, filters it through the simulated SG-9000
// cluster, and writes one CSV log file per proxy (or a single combined
// file), in the 26-field format of the leaked logs.
//
// Usage:
//
//	syngen -requests 1000000 -seed 1 -out logs/            # one file per proxy
//	syngen -requests 200000 -seed 7 -combined corpus.csv   # single file
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/synth"
)

func main() {
	var (
		requests = flag.Int("requests", 1_000_000, "approximate corpus size")
		seed     = flag.Uint64("seed", 1, "generator seed")
		outDir   = flag.String("out", "", "output directory (one sg-NN.csv per proxy)")
		combined = flag.String("combined", "", "single combined output file")
		quiet    = flag.Bool("quiet", false, "suppress the summary")
	)
	flag.Parse()
	if (*outDir == "") == (*combined == "") {
		fmt.Fprintln(os.Stderr, "syngen: exactly one of -out or -combined is required")
		os.Exit(2)
	}

	gen, err := synth.New(synth.Config{Seed: *seed, TotalRequests: *requests})
	if err != nil {
		fatal(err)
	}
	cluster := proxysim.NewCluster(proxysim.Config{
		Seed: *seed, Engine: gen.Engine(), Consensus: gen.Consensus(),
	})

	writers := map[int]*logfmt.Writer{}
	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	newWriter := func(path string) (*logfmt.Writer, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		w := logfmt.NewWriter(f)
		if err := w.WriteHeader(); err != nil {
			return nil, err
		}
		return w, nil
	}

	if *combined != "" {
		w, err := newWriter(*combined)
		if err != nil {
			fatal(err)
		}
		writers[0] = w
	} else {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for sg := logfmt.FirstProxy; sg <= logfmt.LastProxy; sg++ {
			w, err := newWriter(filepath.Join(*outDir, fmt.Sprintf("sg-%d.csv", sg)))
			if err != nil {
				fatal(err)
			}
			writers[sg] = w
		}
	}

	// Track the corpus time span: the generator spreads record
	// timestamps across the paper's Jul 22 – Aug 6 2011 capture window
	// (deterministically per seed), which is what makes censord's
	// /v1/range and censorlyzer -from/-to queries non-degenerate.
	var minTime, maxTime int64
	var rec logfmt.Record
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		cluster.Process(&req, &rec)
		if minTime == 0 || rec.Time < minTime {
			minTime = rec.Time
		}
		if rec.Time > maxTime {
			maxTime = rec.Time
		}
		w := writers[0]
		if w == nil {
			w = writers[rec.Proxy()]
		}
		if err := w.Write(&rec); err != nil {
			fatal(err)
		}
	}
	var written uint64
	for _, w := range writers {
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		written += w.Count()
	}
	if !*quiet {
		c := cluster.Counts()
		span := ""
		if written > 0 {
			const layout = "2006-01-02 15:04"
			span = fmt.Sprintf(" spanning %s .. %s UTC",
				time.Unix(minTime, 0).UTC().Format(layout),
				time.Unix(maxTime, 0).UTC().Format(layout))
		}
		fmt.Printf("wrote %d records (seed %d)%s: %.2f%% allowed, %.2f%% censored, %.2f%% errors, %.2f%% cached\n",
			written, *seed, span,
			pct(c.Allowed, c.Total), pct(c.Censored, c.Total),
			pct(c.Errors, c.Total), pct(c.Proxied, c.Total))
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "syngen:", err)
	os.Exit(1)
}
