// Command sgproxy runs the live filtering proxy: an explicit HTTP proxy
// (plus CONNECT tunneling) enforcing the reproduced Syrian ruleset, with
// Blue Coat-format logging to stdout or a file.
//
// Point a client at it to experience the filtering behaviour:
//
//	sgproxy -listen 127.0.0.1:3128 &
//	curl -x 127.0.0.1:3128 http://www.metacafe.com/      # 403 policy_denied
//	curl -x 127.0.0.1:3128 http://example.com/proxy.php  # 403 (keyword)
//	curl -x 127.0.0.1:3128 http://example.com/           # forwarded
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/policy"
	"syriafilter/internal/proxysim"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:3128", "listen address")
		sg       = flag.Int("sg", 42, "proxy identity (42..48), stamped into logs")
		redirect = flag.String("redirect", "http://127.0.0.1/blocked", "policy_redirect destination")
		logPath  = flag.String("log", "-", "access log path ('-' = stdout)")
	)
	flag.Parse()

	out := os.Stdout
	if *logPath != "-" {
		f, err := os.Create(*logPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	w := logfmt.NewWriter(out)
	if err := w.WriteHeader(); err != nil {
		fatal(err)
	}
	var mu sync.Mutex

	srv := &proxysim.Server{
		Engine:      policy.Compile(policy.PaperRuleset()),
		SG:          *sg,
		RedirectURL: *redirect,
		LogFunc: func(rec *logfmt.Record) {
			mu.Lock()
			defer mu.Unlock()
			if err := w.Write(rec); err == nil {
				_ = w.Flush()
			}
		},
	}
	fmt.Fprintf(os.Stderr, "sgproxy: SG-%d filtering proxy on %s\n", *sg, *listen)
	if err := http.ListenAndServe(*listen, srv); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sgproxy:", err)
	os.Exit(1)
}
