module syriafilter

go 1.22
