//go:build race

package e2e

// raceEnabled mirrors whether this test binary runs under the race
// detector, so TestMain builds the daemon with -race too.
const raceEnabled = true
