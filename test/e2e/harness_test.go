package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemonConfig is the restartable part of a censord invocation: the
// chaos loop mutates Shards and Bucket across restarts, everything
// else stays pinned to the oracle's world.
type daemonConfig struct {
	Seed     uint64
	Requests int
	Shards   int
	Bucket   time.Duration
	CkptDir  string
}

// daemon is one running censord process under test control.
type daemon struct {
	t      *testing.T
	cmd    *exec.Cmd
	url    string
	logTo  *os.File
	exited chan error // receives cmd.Wait exactly once
}

// startDaemon boots censord on a fresh loopback port with the given
// config and blocks until /readyz answers 200 (boot restore included).
// While waiting it checks the restore gate: whenever /readyz is not ok,
// POST /v1/snapshot must answer 503.
func startDaemon(t *testing.T, cfg daemonConfig) *daemon {
	t.Helper()
	addr := freeAddr(t)
	logPath := filepath.Join(cfg.CkptDir, "..", fmt.Sprintf("censord-%d.log", time.Now().UnixNano()))
	logFile, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(censordBin,
		"-addr", addr,
		"-seed", strconv.FormatUint(cfg.Seed, 10),
		"-requests", strconv.Itoa(cfg.Requests),
		"-shards", strconv.Itoa(cfg.Shards),
		"-bucket", cfg.Bucket.String(),
		"-checkpoint", cfg.CkptDir,
		"-checkpoint-every", "0", // checkpoints only via POST /v1/checkpoint and shutdown
		"-snapshot-every", "0", // snapshots only via POST /v1/snapshot
		"-retain", "0", // keep every bucket live so ranges are always exact
		"-shed-after", "-1s", // the oracle drives sequentially; never shed
		"-log-level", "info",
	)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{t: t, cmd: cmd, url: "http://" + addr, logTo: logFile, exited: make(chan error, 1)}
	go func() { d.exited <- cmd.Wait() }()

	deadline := time.Now().Add(60 * time.Second)
	gateChecked := false
	for {
		select {
		case err := <-d.exited:
			d.exited <- err
			t.Fatalf("censord exited during boot: %v\n%s", err, d.logTail())
		default:
		}
		resp, err := http.Get(d.url + "/readyz")
		if err == nil {
			ready := resp.StatusCode == 200
			resp.Body.Close()
			if ready {
				return d
			}
			// Satellite check: the daemon is up but not ready — the
			// state-observing routes must refuse rather than serve a
			// half-restored view. Tolerate the race where boot finishes
			// between the two requests.
			if !gateChecked {
				code, _ := d.post("/v1/snapshot", nil, false)
				// /v1/sync is gated the same way: while restoring it must
				// answer 503 immediately, never park over half-restored
				// state (parking would also stall this boot loop).
				scode, _ := d.get("/v1/sync?timeout=5s")
				// The flight recorder is deliberately NOT gated: it exists
				// to diagnose a daemon in exactly this state, so it must
				// answer 200 (with valid JSON) while /readyz still 503s.
				tcode, tbody := d.get("/debug/traces")
				if tcode != 200 {
					t.Errorf("GET /debug/traces while not ready: status %d, want 200", tcode)
				} else if !json.Valid(tbody) {
					t.Errorf("GET /debug/traces while not ready: invalid JSON: %.200s", tbody)
				}
				if still, err2 := http.Get(d.url + "/readyz"); err2 == nil {
					if still.StatusCode != 200 {
						if code != http.StatusServiceUnavailable {
							t.Errorf("POST /v1/snapshot while not ready: status %d, want 503", code)
						}
						if scode != http.StatusServiceUnavailable {
							t.Errorf("GET /v1/sync while not ready: status %d, want 503", scode)
						}
					}
					still.Body.Close()
				}
				gateChecked = true
			}
		}
		if time.Now().After(deadline) {
			d.kill()
			t.Fatalf("censord not ready after 60s\n%s", d.logTail())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// freeAddr reserves a loopback port by binding and releasing it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// logTail returns the end of the daemon's log for failure messages.
func (d *daemon) logTail() string {
	b, err := os.ReadFile(d.logTo.Name())
	if err != nil {
		return "(no log: " + err.Error() + ")"
	}
	if len(b) > 4096 {
		b = b[len(b)-4096:]
	}
	return string(b)
}

// term sends SIGTERM and waits for a graceful exit (final checkpoint
// included).
func (d *daemon) term() {
	d.t.Helper()
	// Park a /v1/sync long-poll before signaling: the drain must resolve
	// it with a terminal answer (503, or data if a cut raced the signal)
	// instead of letting it pin the shutdown deadline. A transport error
	// (status 0) is tolerated — the listener closes as the process
	// exits — but the request must never hang past shutdown.
	seq := fmt.Sprint(d.snapshotSeq())
	syncDone := make(chan int, 1)
	go func() {
		client := &http.Client{Timeout: 90 * time.Second}
		resp, err := client.Get(d.url + "/v1/sync?timeout=80s&since=" + seq)
		if err != nil {
			syncDone <- 0
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		syncDone <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatalf("SIGTERM: %v", err)
	}
	// While draining (between SIGTERM and listener close) the flight
	// recorder must stay readable — that is when an operator reaches for
	// it. The race with the listener actually closing is tolerated as a
	// transport error (status 0), but a live answer must be a valid 200.
	if resp, err := http.Get(d.url + "/debug/traces"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			d.t.Errorf("GET /debug/traces while draining: status %d, want 200", resp.StatusCode)
		} else if !json.Valid(body) {
			d.t.Errorf("GET /debug/traces while draining: invalid JSON: %.200s", body)
		}
	}
	select {
	case err := <-d.exited:
		if err != nil {
			d.t.Fatalf("censord exited non-zero after SIGTERM: %v\n%s", err, d.logTail())
		}
	case <-time.After(60 * time.Second):
		d.kill()
		d.t.Fatalf("censord did not exit within 60s of SIGTERM\n%s", d.logTail())
	}
	// The process is gone, so the parked poll must have resolved (503
	// from the drain wakeup, 200 if a cut raced, 0 if the listener
	// closed under it). Timeouts here mean a poll pinned the drain.
	select {
	case code := <-syncDone:
		if code != 0 && code != 200 && code != http.StatusServiceUnavailable {
			d.t.Errorf("parked /v1/sync resolved with status %d during drain", code)
		}
	case <-time.After(10 * time.Second):
		d.t.Errorf("parked /v1/sync hung through a graceful shutdown")
	}
	d.logTo.Close()
}

// kill sends SIGKILL and waits for the process to be reaped.
func (d *daemon) kill() {
	d.t.Helper()
	d.cmd.Process.Kill()
	select {
	case <-d.exited:
	case <-time.After(30 * time.Second):
		d.t.Fatalf("censord not reaped 30s after SIGKILL")
	}
	d.logTo.Close()
}

// get fetches a path and returns status and body.
func (d *daemon) get(path string) (int, []byte) {
	d.t.Helper()
	resp, err := http.Get(d.url + path)
	if err != nil {
		d.t.Fatalf("GET %s: %v\n%s", path, err, d.logTail())
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, b
}

// post sends a body (optionally gzip Content-Encoding) and returns
// status and response body. Transport errors return status 0 instead
// of failing the test: callers racing a kill handle them.
func (d *daemon) post(path string, body []byte, gz bool) (int, []byte) {
	req, err := http.NewRequest("POST", d.url+path, bytes.NewReader(body))
	if err != nil {
		d.t.Fatal(err)
	}
	if gz {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// healthSnapshot reads /healthz and returns the published snapshot's
// record count.
func (d *daemon) snapshotRecords() uint64 {
	d.t.Helper()
	code, body := d.get("/healthz")
	if code != 200 {
		d.t.Fatalf("GET /healthz: status %d body %s", code, body)
	}
	var h struct {
		SnapshotRecords uint64 `json:"snapshot_records"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		d.t.Fatalf("decoding /healthz: %v (%s)", err, body)
	}
	return h.SnapshotRecords
}

// snapshotSeq reads /healthz and returns the published snapshot's
// sequence number — a bare /v1/sync since token for the current state.
func (d *daemon) snapshotSeq() uint64 {
	d.t.Helper()
	code, body := d.get("/healthz")
	if code != 200 {
		d.t.Fatalf("GET /healthz: status %d body %s", code, body)
	}
	var h struct {
		SnapshotSeq uint64 `json:"snapshot_seq"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		d.t.Fatalf("decoding /healthz: %v (%s)", err, body)
	}
	return h.SnapshotSeq
}

// getH is get with request headers, also returning the response
// headers — the conditional-GET workers need both directions.
func (d *daemon) getH(path string, hdr ...[2]string) (int, []byte, http.Header) {
	d.t.Helper()
	req, err := http.NewRequest("GET", d.url+path, nil)
	if err != nil {
		d.t.Fatal(err)
	}
	for _, h := range hdr {
		req.Header.Set(h[0], h[1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		d.t.Fatalf("GET %s: %v\n%s", path, err, d.logTail())
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		d.t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, b, resp.Header
}

// metrics scrapes /metrics into a flat series map:
// "name{label=\"v\"}" (or bare "name") → value.
func (d *daemon) metrics() map[string]float64 {
	d.t.Helper()
	code, body := d.get("/metrics")
	if code != 200 {
		d.t.Fatalf("GET /metrics: status %d", code)
	}
	return parseMetrics(string(body))
}

func parseMetrics(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

// metricValue sums every series of a family (bare name or any label
// set), so unlabeled counters and per-label families read the same way.
func metricValue(series map[string]float64, family string) float64 {
	var sum float64
	for k, v := range series {
		if k == family || strings.HasPrefix(k, family+"{") {
			sum += v
		}
	}
	return sum
}

// histQuantile reads a cumulative-bucket histogram out of a parsed
// /metrics scrape and returns the upper bound of the bucket containing
// quantile q (the standard Prometheus-style estimate). route filters to
// one route label; "" takes every series of the family (for unlabeled
// histograms like censord_sync_wait_seconds).
func histQuantile(series map[string]float64, family, route string, q float64) float64 {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	prefix := family + "_bucket{"
	for k, v := range series {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if route != "" && !strings.Contains(k, `route="`+route+`"`) {
			continue
		}
		leStart := strings.Index(k, `le="`)
		if leStart < 0 {
			continue
		}
		leStr := k[leStart+4:]
		leStr = leStr[:strings.IndexByte(leStr, '"')]
		le := math.Inf(1)
		if leStr != "+Inf" {
			var err error
			if le, err = strconv.ParseFloat(leStr, 64); err != nil {
				continue
			}
		}
		buckets = append(buckets, bucket{le: le, cum: v})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0
	}
	want := q * total
	for _, b := range buckets {
		if b.cum >= want {
			return b.le
		}
	}
	return buckets[len(buckets)-1].le
}
