package e2e

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/render"
	"syriafilter/internal/synth"
)

// corpusSeed/corpusRequests pin the synthetic world shared by the
// oracle and every daemon it boots (-seed/-requests must match or the
// derived category DB and consensus diverge).
const (
	corpusSeed     = 1
	corpusRequests = 60_000
)

// world is the oracle's ground truth: the full corpus, the generator
// the daemon derives its databases from, and the analyzer options a
// batch reference run uses.
type world struct {
	gen     *synth.Generator
	records []logfmt.Record
	opt     core.Options
	minTime int64
	maxTime int64
}

var (
	worldOnce sync.Once
	theWorld  *world
)

func loadWorld(t *testing.T) *world {
	t.Helper()
	worldOnce.Do(func() {
		gen, err := synth.New(synth.Config{Seed: corpusSeed, TotalRequests: corpusRequests})
		if err != nil {
			return
		}
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: corpusSeed, Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		w := &world{gen: gen, opt: core.Options{
			Categories: gen.CategoryDB(),
			Consensus:  gen.Consensus(),
			TitleDB:    bittorrent.NewTitleDB(),
		}}
		var rec logfmt.Record
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			if w.minTime == 0 || rec.Time < w.minTime {
				w.minTime = rec.Time
			}
			if rec.Time > w.maxTime {
				w.maxTime = rec.Time
			}
			w.records = append(w.records, rec)
		}
		theWorld = w
	})
	if theWorld == nil {
		t.Fatal("synthetic world failed to build")
	}
	return theWorld
}

// model is the oracle's running mirror of the daemon: an incremental
// batch analyzer over every acked record, plus a rendered-doc cache
// keyed by (experiment id, acked count).
type model struct {
	t     *testing.T
	w     *world
	an    *core.Analyzer
	acked uint64 // records acknowledged by the daemon, = an's input prefix

	docCache map[string][]byte // id → JSON body at docCount
	docCount uint64
}

func newModel(t *testing.T, w *world) *model {
	return &model{t: t, w: w, an: core.NewAnalyzer(w.opt), docCache: map[string][]byte{}}
}

// ack folds the next n records (the batch the daemon just acknowledged)
// into the analyzer.
func (m *model) ack(n uint64) {
	for i := m.acked; i < m.acked+n; i++ {
		m.an.Observe(&m.w.records[i])
	}
	m.acked += n
}

// doc renders one experiment over every acked record, as the daemon's
// JSON endpoint would emit it (json.Marshal + newline).
func (m *model) doc(id string) []byte {
	m.t.Helper()
	if m.docCount != m.acked {
		m.docCache = map[string][]byte{}
		m.docCount = m.acked
	}
	if b, ok := m.docCache[id]; ok {
		return b
	}
	doc, err := render.Render(id, render.Context{An: m.an, Gen: m.w.gen})
	if err != nil {
		m.t.Fatalf("model render %s: %v", id, err)
	}
	b, err := json.Marshal(doc)
	if err != nil {
		m.t.Fatal(err)
	}
	b = append(b, '\n')
	m.docCache[id] = b
	return b
}

// rangeDoc renders one experiment over the acked records inside the
// half-open window [from, to) — the model for /v1/range with a
// bucket-aligned window.
func (m *model) rangeDoc(id string, from, to int64) []byte {
	m.t.Helper()
	an := core.NewAnalyzer(m.w.opt)
	for i := uint64(0); i < m.acked; i++ {
		if t := m.w.records[i].Time; t >= from && t < to {
			an.Observe(&m.w.records[i])
		}
	}
	doc, err := render.Render(id, render.Context{An: an, Gen: m.w.gen})
	if err != nil {
		m.t.Fatalf("model range render %s: %v", id, err)
	}
	b, err := json.Marshal(doc)
	if err != nil {
		m.t.Fatal(err)
	}
	return append(b, '\n')
}

// encodeCSV renders records in the on-the-wire log format, optionally
// gzipped.
func encodeCSV(t *testing.T, recs []logfmt.Record, gz bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var w *logfmt.Writer
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(&buf)
		w = logfmt.NewWriter(zw)
	} else {
		w = logfmt.NewWriter(&buf)
	}
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// ledger mirrors the durable state the daemon leaves on disk: which
// generation directories exist, how many acked records each one
// covers, which bucket width wrote it, and which ones the chaos loop
// has corrupted. Restores are predicted by replaying exactly the
// daemon's fallback walk over this mirror.
type ledger struct {
	t       *testing.T
	dir     string
	gens    map[string]genFact // generation dir name → facts
	pending *pendingCkpt       // checkpoint racing a SIGKILL, unresolved
}

type genFact struct {
	records   uint64
	bucket    time.Duration
	corrupted bool
}

type pendingCkpt struct {
	acked  uint64 // records acked when the checkpoint was requested
	bucket time.Duration
}

func newLedger(t *testing.T, dir string) *ledger {
	return &ledger{t: t, dir: dir, gens: map[string]genFact{}}
}

// confirm records a checkpoint the daemon acknowledged with 200 (the
// response names the generation and its record count).
func (l *ledger) confirm(generation string, records uint64, bucket time.Duration) {
	l.gens[generation] = genFact{records: records, bucket: bucket}
}

// diskGens lists the complete (non-.tmp) generation directories,
// oldest first.
func (l *ledger) diskGens() []string {
	l.t.Helper()
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		l.t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "gen-") && !strings.HasSuffix(e.Name(), ".tmp") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // gen-%08d: lexicographic == numeric
	return names
}

// reconcile scans the checkpoint dir after the daemon stopped and
// resolves any generation the ledger has not confirmed over HTTP: at
// most one unknown can appear per stop — the final SIGTERM checkpoint
// (covers totalAcked) or a mid-kill checkpoint that won its race
// (covers the acked count at the request). Returns the on-disk
// generation names, oldest first.
func (l *ledger) reconcile(totalAcked uint64, bucket time.Duration, graceful bool) []string {
	l.t.Helper()
	names := l.diskGens()
	var unknown []string
	for _, name := range names {
		if _, ok := l.gens[name]; !ok {
			unknown = append(unknown, name)
		}
	}
	switch {
	case len(unknown) == 0:
	case len(unknown) == 1:
		switch {
		case graceful:
			l.gens[unknown[0]] = genFact{records: totalAcked, bucket: bucket}
		case l.pending != nil:
			l.gens[unknown[0]] = genFact{records: l.pending.acked, bucket: l.pending.bucket}
		default:
			l.t.Fatalf("generation %s appeared without any checkpoint in flight", unknown[0])
		}
	default:
		l.t.Fatalf("%d unconfirmed generations appeared at once: %v", len(unknown), unknown)
	}
	l.pending = nil
	// Forget pruned generations so the mirror stays exact.
	onDisk := map[string]bool{}
	for _, name := range names {
		onDisk[name] = true
	}
	for name := range l.gens {
		if !onDisk[name] {
			delete(l.gens, name)
		}
	}
	return names
}

// expectRestore replays the daemon's restore walk over the mirrored
// generations: newest to oldest, skipping corrupted directories and
// bucket-width mismatches, 0 on a cold boot. Also returns how many
// generations the walk must skip (the restore-fallback count floor).
func (l *ledger) expectRestore(bucket time.Duration) (records uint64, skipped int) {
	names := l.diskGens()
	for i := len(names) - 1; i >= 0; i-- {
		g, ok := l.gens[names[i]]
		if !ok {
			l.t.Fatalf("expectRestore before reconcile: %s unknown", names[i])
		}
		if g.corrupted || g.bucket != bucket {
			skipped++
			continue
		}
		return g.records, skipped
	}
	return 0, skipped
}

// corruptNewest damages the newest generation (or the manifest) while
// the daemon is down. Returns a description of what it did, and
// whether a generation (rather than just the manifest) was hit.
func (l *ledger) corruptNewest(mode int) (string, bool) {
	l.t.Helper()
	names := l.diskGens()
	if len(names) == 0 {
		return "", false
	}
	newest := names[len(names)-1]
	switch mode % 3 {
	case 0: // truncate the manifest: advisory, costs nothing
		path := filepath.Join(l.dir, "MANIFEST.json")
		if err := os.Truncate(path, 7); err != nil {
			l.t.Fatal(err)
		}
		return "truncated MANIFEST.json", false
	case 1: // truncate a shard file in the newest generation
		path := l.anyShardFile(newest)
		if err := os.Truncate(path, 16); err != nil {
			l.t.Fatal(err)
		}
		g := l.gens[newest]
		g.corrupted = true
		l.gens[newest] = g
		return "truncated " + path, true
	default: // garble gzip bytes mid-file
		path := l.anyShardFile(newest)
		b, err := os.ReadFile(path)
		if err != nil {
			l.t.Fatal(err)
		}
		for i := len(b) / 2; i < len(b)/2+16 && i < len(b); i++ {
			b[i] ^= 0xff
		}
		if err := os.WriteFile(path, b, 0o644); err != nil {
			l.t.Fatal(err)
		}
		g := l.gens[newest]
		g.corrupted = true
		l.gens[newest] = g
		return "garbled " + path, true
	}
}

func (l *ledger) anyShardFile(gen string) string {
	l.t.Helper()
	entries, err := os.ReadDir(filepath.Join(l.dir, gen))
	if err != nil {
		l.t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "shard-") && strings.HasSuffix(e.Name(), ".ckpt.gz") {
			return filepath.Join(l.dir, gen, e.Name())
		}
	}
	l.t.Fatalf("generation %s holds no shard files", gen)
	return ""
}

// alignedWindow picks a random bucket-aligned half-open window
// overlapping the corpus span. Bucket alignment matters: /v1/range
// merges whole buckets, so only aligned windows have an exact
// record-filter model.
func alignedWindow(rnd interface{ Intn(int) int }, w *world, bucket time.Duration) (int64, int64) {
	bs := int64(bucket / time.Second)
	lo := w.minTime / bs
	hi := w.maxTime/bs + 1
	n := int(hi - lo)
	a := lo + int64(rnd.Intn(n))
	b := a + 1 + int64(rnd.Intn(n-int(a-lo)))
	return a * bs, b * bs
}
