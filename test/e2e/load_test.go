package e2e

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// loadResult is the BENCH_serve.json shape: achieved ingest throughput
// and query latency percentiles, both read off the daemon's own
// /metrics exposition (so the numbers are what an operator's scraper
// would see, not harness-side stopwatch guesses).
type loadResult struct {
	DurationS      float64 `json:"duration_s"`
	TargetMBPerS   float64 `json:"target_mb_per_s"`
	IngestMBPerS   float64 `json:"ingest_mb_per_s"`
	IngestRecords  float64 `json:"ingest_records"`
	IngestBatches  int     `json:"ingest_batches"`
	QueryRequests  float64 `json:"query_requests"`
	QueryP50S      float64 `json:"query_p50_s"`
	QueryP95S      float64 `json:"query_p95_s"`
	QueryP99S      float64 `json:"query_p99_s"`
	IngestP50S     float64 `json:"ingest_p50_s"`
	IngestP99S     float64 `json:"ingest_p99_s"`
	ShedTotal      float64 `json:"shed_total"`
	RaceInstrument bool    `json:"race_instrumented"`
	// Read-path efficiency: doc-cache hits (304 revalidations included)
	// over hits+misses during the run, and the p95 time /v1/sync
	// long-polls spent parked before a snapshot cut (or timeout) woke
	// them.
	QueryCacheHitRatio float64 `json:"query_cache_hit_ratio"`
	SyncWakeupP95S     float64 `json:"sync_wakeup_p95_s"`
	// Provenance: which commit produced these numbers, and when — so a
	// regression hunt can line BENCH_serve.json up with git history.
	VCSRevision string `json:"vcs_revision"`
	RecordedAt  string `json:"recorded_at"`
}

// benchRevision resolves the revision stamped into the result:
// -load.revision wins (scripts/bench.sh passes it), otherwise git is
// asked directly, with "unknown" as the no-git fallback.
func benchRevision() string {
	if *loadRevision != "" {
		return *loadRevision
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// TestLoadSmoke is the closed-loop load probe: one producer streams
// CSV batches to POST /v1/ingest pacing itself to -load.target-mb,
// two query workers hammer table and figure endpoints concurrently,
// and the result — achieved MB/s, latency percentiles from the
// http_request_seconds histograms — is written to -load.out (the
// scripts/bench.sh BENCH_serve.json producer) or logged.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke spawns a real daemon; skipped in -short")
	}
	w := loadWorld(t)
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	d := startDaemon(t, daemonConfig{
		Seed: corpusSeed, Requests: corpusRequests,
		Shards: 3, Bucket: time.Hour, CkptDir: ckptDir,
	})
	defer d.kill()

	before := d.metrics()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Producer: stream pre-encoded batches at the target byte rate.
	// Closed loop: the next batch is not sent before the previous
	// response arrives, so overload surfaces as falling MB/s (and,
	// past -shed-after, as 429s counted in shed_total), never as an
	// unbounded client-side queue.
	const batchRecords = 2000
	var batches [][]byte
	for lo := 0; lo+batchRecords <= len(w.records); lo += batchRecords {
		batches = append(batches, encodeCSV(t, w.records[lo:lo+batchRecords], false))
	}
	var sentBatches atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		targetBps := *loadTargetMB * 1e6
		start := time.Now()
		var sentBytes float64
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := batches[i%len(batches)]
			code, resp := d.post("/v1/ingest", body, false)
			if code != 200 && code != 429 && code != 0 {
				t.Errorf("load ingest: status %d body %s", code, resp)
				return
			}
			sentBatches.Add(1)
			sentBytes += float64(len(body))
			// Pace: sleep until the cumulative rate drops to target.
			ahead := sentBytes/targetBps - time.Since(start).Seconds()
			if ahead > 0 {
				select {
				case <-stop:
					return
				case <-time.After(time.Duration(ahead * float64(time.Second))):
				}
			}
		}
	}()

	// Query workers: a table and a figure endpoint, plus periodic
	// snapshot cuts so queries see fresh data. Each worker revalidates
	// with the last ETag it saw — the realistic client shape the doc
	// cache is built for: between cuts every request is a 304 or a
	// cache hit, only the first request per generation renders.
	for _, path := range []string{"/v1/tables/4", "/v1/figures/5"} {
		path := path
		wg.Add(1)
		go func() {
			defer wg.Done()
			etag := ""
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%50 == 0 {
					d.post("/v1/snapshot", nil, false)
				}
				var hdr [][2]string
				if etag != "" {
					hdr = append(hdr, [2]string{"If-None-Match", etag})
				}
				code, body, respHdr := d.getH(path, hdr...)
				if code != 200 && code != 304 {
					t.Errorf("load query %s: status %d body %s", path, code, body)
					return
				}
				if e := respHdr.Get("ETag"); e != "" {
					etag = e
				}
			}
		}()
	}

	// Sync poller: rides the token chain with short long-polls, waking
	// on the cuts the query workers trigger. Feeds the
	// censord_sync_wait_seconds histogram behind sync_wakeup_p95_s.
	wg.Add(1)
	go func() {
		defer wg.Done()
		since := ""
		for {
			select {
			case <-stop:
				return
			default:
			}
			code, body, _ := d.getH("/v1/sync?ids=table4&timeout=2s&since=" + since)
			if code != 200 {
				t.Errorf("load sync: status %d body %s", code, body)
				return
			}
			var resp struct {
				Next string `json:"next"`
			}
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Errorf("load sync: %v (%.200s)", err, body)
				return
			}
			since = resp.Next
		}
	}()

	time.Sleep(*loadDuration)
	close(stop)
	wg.Wait()

	after := d.metrics()
	secs := loadDuration.Seconds()
	ingestBytes := metricValue(after, "censord_ingest_bytes_total") - metricValue(before, "censord_ingest_bytes_total")
	res := loadResult{
		DurationS:     secs,
		TargetMBPerS:  *loadTargetMB,
		IngestMBPerS:  ingestBytes / 1e6 / secs,
		IngestRecords: metricValue(after, "censord_ingest_records_total"),
		IngestBatches: int(sentBatches.Load()),
		// Revalidations answer 304, so both code classes are query traffic.
		QueryRequests: metricValue(after, `http_requests_total{route="/v1/tables/{id}",code="2xx"}`) +
			metricValue(after, `http_requests_total{route="/v1/tables/{id}",code="3xx"}`) +
			metricValue(after, `http_requests_total{route="/v1/figures/{id}",code="2xx"}`) +
			metricValue(after, `http_requests_total{route="/v1/figures/{id}",code="3xx"}`),
		QueryP50S:      histQuantile(after, "http_request_seconds", "/v1/tables/{id}", 0.50),
		QueryP95S:      histQuantile(after, "http_request_seconds", "/v1/tables/{id}", 0.95),
		QueryP99S:      histQuantile(after, "http_request_seconds", "/v1/tables/{id}", 0.99),
		IngestP50S:     histQuantile(after, "http_request_seconds", "/v1/ingest", 0.50),
		IngestP99S:     histQuantile(after, "http_request_seconds", "/v1/ingest", 0.99),
		ShedTotal:      metricValue(after, "censord_ingest_shed_total"),
		RaceInstrument: raceEnabled,
		SyncWakeupP95S: histQuantile(after, "censord_sync_wait_seconds", "", 0.95),
		VCSRevision:    benchRevision(),
		RecordedAt:     time.Now().UTC().Format(time.RFC3339),
	}
	hits := metricValue(after, "censord_doccache_hits_total") - metricValue(before, "censord_doccache_hits_total")
	misses := metricValue(after, "censord_doccache_misses_total") - metricValue(before, "censord_doccache_misses_total")
	if hits+misses > 0 {
		res.QueryCacheHitRatio = hits / (hits + misses)
	}

	if res.IngestMBPerS <= 0 {
		t.Error("load smoke ingested nothing")
	}
	if res.QueryRequests == 0 {
		t.Error("load smoke answered no queries")
	}
	// The read path must be cache-dominated under this workload: between
	// snapshot cuts every revalidation and repeat query should skip the
	// render entirely.
	if res.QueryCacheHitRatio < 0.9 {
		t.Errorf("query cache hit ratio %.3f, want >= 0.9 (hits %.0f, misses %.0f)",
			res.QueryCacheHitRatio, hits, misses)
	}

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, '\n')
	t.Logf("load smoke: %s", b)
	if *loadOut != "" {
		if err := os.WriteFile(*loadOut, b, 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *loadOut)
	}
}
