package e2e

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"syriafilter/internal/render"
	"syriafilter/internal/serve"
)

// TestChaos is the fault-injection oracle: it drives a seeded random
// action sequence — ingest batches, table/figure/range queries,
// snapshot cuts, explicit checkpoints, SIGTERM and SIGKILL (including
// kills timed into a running checkpoint), restarts with changed shard
// counts and bucket widths, and corruption of the newest checkpoint
// generation — against the real censord binary, checking after every
// restart that:
//
//   - the restored record count is exactly what the durable artifacts
//     on disk predict (after SIGTERM: every acked record; after
//     SIGKILL: the newest uncorrupted, width-compatible generation);
//   - re-ingesting the lost delta converges every experiment document
//     byte-identically with a batch model run over the same records;
//   - corrupted generations surface as restore fallbacks on /metrics
//     instead of failing the boot.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos oracle spawns real daemons; skipped in -short")
	}
	w := loadWorld(t)
	rnd := rand.New(rand.NewSource(*chaosSeed))
	ckptDir := filepath.Join(t.TempDir(), "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}

	cfg := daemonConfig{
		Seed: corpusSeed, Requests: corpusRequests,
		Shards: 3, Bucket: time.Hour, CkptDir: ckptDir,
	}
	m := newModel(t, w)
	led := newLedger(t, ckptDir)
	counts := map[string]int{}
	d := startDaemon(t, cfg)

	// reingest replays records[from:to] into the daemon in chunks,
	// without touching the model (it already acked them).
	reingest := func(from, to uint64) {
		t.Helper()
		for lo := from; lo < to; lo += 10_000 {
			hi := lo + 10_000
			if hi > to {
				hi = to
			}
			code, body := d.post("/v1/ingest", encodeCSV(t, w.records[lo:hi], false), false)
			if code != 200 {
				t.Fatalf("re-ingest [%d:%d): status %d body %s", lo, hi, code, body)
			}
			var resp struct {
				Added uint64 `json:"added"`
			}
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Added != hi-lo {
				t.Fatalf("re-ingest [%d:%d): daemon acked %d records", lo, hi, resp.Added)
			}
		}
	}

	// converge cuts a snapshot and diffs every experiment document
	// against the model — the byte-identity acceptance check.
	converge := func(when string) {
		t.Helper()
		if code, body := d.post("/v1/snapshot", nil, false); code != 200 {
			t.Fatalf("%s: POST /v1/snapshot: status %d body %s", when, code, body)
		}
		if got := d.snapshotRecords(); got != m.acked {
			t.Fatalf("%s: snapshot holds %d records, model has %d acked", when, got, m.acked)
		}
		for _, id := range render.Order() {
			code, body := d.get("/v1/experiments/" + id)
			if code != 200 {
				t.Fatalf("%s: GET %s: status %d body %s", when, id, code, body)
			}
			if want := m.doc(id); string(body) != string(want) {
				t.Fatalf("%s: %s diverged from the batch model (daemon %d bytes, model %d bytes)\n got: %.300s\nwant: %.300s",
					when, id, len(body), len(want), body, want)
			}
		}
		// A zero-token /v1/sync resync must carry the same bytes the GET
		// path (and the model) agree on — the tracker renders through the
		// same cache, so divergence here means the sync path leaks stale
		// generations across restarts.
		code, body := d.get("/v1/sync?ids=table4")
		if code != 200 {
			t.Fatalf("%s: GET /v1/sync: status %d body %s", when, code, body)
		}
		var sr struct {
			Changed []struct {
				ID   string          `json:"id"`
				Full json.RawMessage `json:"full"`
			} `json:"changed"`
		}
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("%s: decoding /v1/sync: %v (%.200s)", when, err, body)
		}
		if len(sr.Changed) != 1 || sr.Changed[0].ID != "table4" {
			t.Fatalf("%s: zero-token sync returned %d changes, want table4", when, len(sr.Changed))
		}
		want := m.doc("table4")
		if string(sr.Changed[0].Full)+"\n" != string(want) {
			t.Fatalf("%s: /v1/sync full doc diverged from the batch model\n got: %.300s\nwant: %.300s",
				when, sr.Changed[0].Full, want)
		}
	}

	// restart brings the daemon back with (possibly changed) cfg and
	// runs the full durability validation.
	restart := func(why string, graceful bool, corrupted bool) {
		t.Helper()
		expected, skipped := led.expectRestore(cfg.Bucket)
		d = startDaemon(t, cfg)
		if code, body := d.post("/v1/snapshot", nil, false); code != 200 {
			t.Fatalf("%s: snapshot after restart: status %d body %s", why, code, body)
		}
		restored := d.snapshotRecords()
		if restored != expected {
			t.Fatalf("%s: restored %d records, durable artifacts predict %d (graceful=%v, %d gens skipped)\n%s",
				why, restored, expected, graceful, skipped, d.logTail())
		}
		if corrupted && skipped > 0 {
			series := d.metrics()
			if got := metricValue(series, "censord_checkpoint_restore_fallbacks_total"); got < float64(skipped) {
				t.Fatalf("%s: censord_checkpoint_restore_fallbacks_total = %v after skipping %d generations", why, got, skipped)
			}
		}
		if restored < m.acked {
			reingest(restored, m.acked)
		}
		// The flight recorder must come back readable after every kind of
		// restart (graceful, kill, corrupted checkpoint): traces do not
		// survive the process, but the endpoint and its JSON shape must.
		if code, body := d.get("/debug/traces"); code != 200 {
			t.Fatalf("%s: GET /debug/traces after restart: status %d body %.200s", why, code, body)
		} else if !json.Valid(body) {
			t.Fatalf("%s: GET /debug/traces after restart: invalid JSON: %.200s", why, body)
		}
		converge(why)
	}

	stopAndReconcile := func(graceful bool) {
		t.Helper()
		prevBucket := cfg.Bucket
		if graceful {
			d.term()
		} else {
			d.kill()
		}
		led.reconcile(m.acked, prevBucket, graceful)
		if graceful {
			// SIGTERM durability: the final checkpoint covers every
			// acknowledged record.
			rec, _ := led.expectRestore(prevBucket)
			if rec != m.acked {
				t.Fatalf("graceful shutdown left %d durable records, %d were acked\n%s", rec, m.acked, d.logTail())
			}
		}
	}

	checkpointNow := func() bool {
		t.Helper()
		code, body := d.post("/v1/checkpoint", nil, false)
		if code != 200 {
			t.Fatalf("POST /v1/checkpoint: status %d body %s", code, body)
		}
		var info serve.CheckpointInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Records != m.acked {
			t.Fatalf("checkpoint covers %d records, %d acked", info.Records, m.acked)
		}
		led.confirm(info.Generation, info.Records, cfg.Bucket)
		return true
	}

	ingestOne := func() bool {
		if m.acked >= uint64(len(w.records)) {
			return false // corpus exhausted; caller picks another action
		}
		size := uint64(100 + rnd.Intn(400))
		if rest := uint64(len(w.records)) - m.acked; size > rest {
			size = rest
		}
		gz := rnd.Intn(3) == 0
		path := "/v1/ingest"
		if rnd.Intn(2) == 0 {
			path += "?refresh=1"
		}
		code, body := d.post(path, encodeCSV(t, w.records[m.acked:m.acked+size], gz), gz)
		if code != 200 {
			t.Fatalf("POST %s: status %d body %s", path, code, body)
		}
		var resp struct {
			Added uint64 `json:"added"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Added != size {
			t.Fatalf("ingest acked %d of %d records", resp.Added, size)
		}
		m.ack(size)
		return true
	}

	queryDoc := func() {
		t.Helper()
		order := render.Order()
		id := order[rnd.Intn(len(order))]
		code, body := d.get("/v1/experiments/" + id + "?fresh=1")
		if code != 200 {
			t.Fatalf("GET /v1/experiments/%s: status %d body %s", id, code, body)
		}
		if want := m.doc(id); string(body) != string(want) {
			t.Fatalf("doc %s diverged from model\n got: %.300s\nwant: %.300s", id, body, want)
		}
	}

	queryRange := func() {
		t.Helper()
		order := render.Order()
		id := order[rnd.Intn(len(order))]
		from, to := alignedWindow(rnd, w, cfg.Bucket)
		path := fmt.Sprintf("/v1/range/%s?from=%d&to=%d", id, from, to)
		code, body := d.get(path)
		if code != 200 {
			t.Fatalf("GET %s: status %d body %s", path, code, body)
		}
		if want := m.rangeDoc(id, from, to); string(body) != string(want) {
			t.Fatalf("range %s [%d,%d) diverged from filtered model\n got: %.300s\nwant: %.300s",
				id, from, to, body, want)
		}
	}

	for i := 0; i < *chaosActions; i++ {
		p := rnd.Intn(100)
		switch {
		case p < 38:
			if ingestOne() {
				counts["ingest"]++
			} else {
				queryDoc()
				counts["doc"]++
			}
		case p < 54:
			queryDoc()
			counts["doc"]++
		case p < 64:
			queryRange()
			counts["range"]++
		case p < 70:
			if code, body := d.post("/v1/snapshot", nil, false); code != 200 {
				t.Fatalf("POST /v1/snapshot: status %d body %s", code, body)
			}
			counts["snapshot"]++
		case p < 78:
			checkpointNow()
			counts["checkpoint"]++
		case p < 83:
			stopAndReconcile(true)
			restart("sigterm-restart", true, false)
			counts["sigterm"]++
		case p < 90:
			stopAndReconcile(false)
			restart("sigkill-restart", false, false)
			counts["sigkill"]++
		case p < 93:
			// Kill timed into a running checkpoint: the generation may
			// or may not land; either way the disk stays consistent.
			led.pending = &pendingCkpt{acked: m.acked, bucket: cfg.Bucket}
			result := make(chan []byte, 1)
			go func() {
				code, body := d.post("/v1/checkpoint", nil, false)
				if code == 200 {
					result <- body
				} else {
					result <- nil
				}
			}()
			time.Sleep(time.Duration(rnd.Intn(8)) * time.Millisecond)
			d.kill()
			select {
			case body := <-result:
				if body != nil {
					var info serve.CheckpointInfo
					if err := json.Unmarshal(body, &info); err == nil {
						led.confirm(info.Generation, info.Records, cfg.Bucket)
						led.pending = nil
					}
				}
			case <-time.After(5 * time.Second):
				t.Fatal("mid-checkpoint request did not resolve after kill")
			}
			led.reconcile(m.acked, cfg.Bucket, false)
			restart("sigkill-mid-checkpoint", false, false)
			counts["sigkill"]++
			counts["midckpt"]++
		case p < 97:
			d.kill()
			led.reconcile(m.acked, cfg.Bucket, false)
			desc, hitGen := led.corruptNewest(rnd.Intn(3))
			if desc != "" {
				t.Logf("action %d: corruption: %s", i, desc)
				counts["corrupt"]++
			}
			restart("corrupt-restart ("+desc+")", false, hitGen)
			counts["sigkill"]++
		case p < 99:
			stopAndReconcile(true)
			cfg.Shards = 2 + (cfg.Shards-2+1)%3 // cycle 2,3,4
			restart(fmt.Sprintf("shard-change-restart (shards=%d)", cfg.Shards), true, false)
			counts["shards"]++
		default:
			stopAndReconcile(true)
			if cfg.Bucket == time.Hour {
				cfg.Bucket = 30 * time.Minute
			} else {
				cfg.Bucket = time.Hour
			}
			restart(fmt.Sprintf("bucket-change-restart (bucket=%s)", cfg.Bucket), true, false)
			counts["bucket"]++
		}
	}

	// Final graceful shutdown: everything acked must be durable.
	stopAndReconcile(true)
	restart("final-restart", true, false)
	d.term()

	t.Logf("chaos summary (%d actions, seed %d): %v; %d/%d records ingested",
		*chaosActions, *chaosSeed, counts, m.acked, len(w.records))

	// Chaos-coverage floors: a sequence long enough must actually have
	// exercised the interesting transitions.
	if min := max(2, *chaosActions/60); counts["sigkill"] < min {
		t.Errorf("only %d SIGKILLs in %d actions, want >= %d", counts["sigkill"], *chaosActions, min)
	}
	if min := *chaosActions / 150; counts["shards"] < min {
		t.Errorf("only %d shard-count changes in %d actions, want >= %d", counts["shards"], *chaosActions, min)
	}
	if *chaosActions >= 100 && counts["corrupt"] < 1 {
		t.Errorf("no corruption injected in %d actions", *chaosActions)
	}
}
