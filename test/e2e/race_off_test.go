//go:build !race

package e2e

const raceEnabled = false
