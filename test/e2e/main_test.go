// Package e2e black-box tests the censord daemon: TestMain compiles
// the real binary, TestChaos drives seeded random fault-injection
// sequences against a batch-model oracle (see chaos_test.go), and
// TestLoadSmoke runs a closed-loop ingest+query load probe recording
// BENCH_serve.json (see load_test.go).
//
// The package holds only external tests on purpose: everything it
// observes — HTTP responses, exit codes, checkpoint directories,
// /metrics — is a surface a real operator has.
package e2e

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

var (
	chaosActions = flag.Int("chaos.actions", 60, "length of the chaos action sequence")
	chaosSeed    = flag.Int64("chaos.seed", 1, "seed of the chaos action sequence")

	loadDuration = flag.Duration("load.duration", 2*time.Second, "load smoke duration")
	loadTargetMB = flag.Float64("load.target-mb", 8, "load smoke target ingest rate, MB/s")
	loadOut      = flag.String("load.out", "", "write the load smoke result JSON here (empty = log only)")
	loadRevision = flag.String("load.revision", "", "VCS revision stamped into the load smoke result (empty = ask git)")
)

// censordBin is the freshly built daemon binary, set by TestMain.
var censordBin string

func TestMain(m *testing.M) {
	flag.Parse()
	tmp, err := os.MkdirTemp("", "censord-e2e-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmp)

	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e:", err)
		os.Exit(1)
	}
	censordBin = filepath.Join(tmp, "censord")
	args := []string{"build"}
	if raceEnabled {
		// The chaos run must be race-clean inside the daemon too, not
		// just in the test harness.
		args = append(args, "-race")
	}
	args = append(args, "-o", censordBin, "./cmd/censord")
	build := exec.Command("go", args...)
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "e2e: building censord: %v\n%s", err, out)
		os.Exit(1)
	}

	code := m.Run()
	os.RemoveAll(tmp)
	os.Exit(code)
}
