// Package repro is the root of the reproduction of "Censorship in the
// Wild: Analyzing Internet Filtering in Syria" (IMC 2014). The library
// lives under internal/ (core is the analysis engine; the other packages
// are the substrates), the executables under cmd/, and runnable examples
// under examples/. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
