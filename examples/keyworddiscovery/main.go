// Keyword discovery: reproduce §5.4 of the paper — recover the censor's
// keyword and domain blacklists from the logs alone — and, because the
// synthetic corpus comes from a known policy, grade the recovery against
// the ground truth. This is the validation the original study could not
// perform.
//
//	go run ./examples/keyworddiscovery
package main

import (
	"fmt"
	"log"
	"strings"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/policy"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/report"
	"syriafilter/internal/synth"
)

func main() {
	gen, err := synth.New(synth.Config{Seed: 7, TotalRequests: 400_000})
	if err != nil {
		log.Fatal(err)
	}
	cluster := proxysim.NewCluster(proxysim.Config{
		Seed: 7, Engine: gen.Engine(), Consensus: gen.Consensus(),
	})
	analyzer := core.NewAnalyzer(core.Options{Categories: gen.CategoryDB()})

	var rec logfmt.Record
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		cluster.Process(&req, &rec)
		analyzer.Observe(&rec)
	}

	d := analyzer.DiscoverFilters(0)

	// --- Keywords (Table 10) ---
	truth := map[string]bool{}
	for _, kw := range policy.PaperKeywords {
		truth[kw] = true
	}
	tbl := report.NewTable("Recovered keywords", "Keyword", "Censored hits", "Ground truth?")
	recall := 0
	for _, kw := range d.Keywords {
		mark := "collateral token"
		if truth[kw.Keyword] {
			mark = "YES"
			recall++
		}
		tbl.Row(kw.Keyword, kw.Censored, mark)
	}
	fmt.Print(tbl)
	fmt.Printf("\nkeyword recall: %d/%d\n\n", recall, len(policy.PaperKeywords))

	// --- Domains (Table 8) ---
	engine := gen.Engine()
	confirmed := 0
	for _, sd := range d.Domains {
		if strings.HasPrefix(sd.Domain, ".") {
			confirmed++ // TLD rule (.il)
			continue
		}
		r := policy.Request{Host: sd.Domain, Path: "/", Scheme: "http", Method: "GET", Port: 80}
		if engine.Evaluate(&r).Action != policy.Allow {
			confirmed++
		}
	}
	fmt.Printf("suspected domains: %d (%d confirmed against ground truth)\n", len(d.Domains), confirmed)
	fmt.Println("\ntop suspected domains:")
	for i, sd := range d.Domains {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-24s %6d censored\n", sd.Domain, sd.Censored)
	}
}
