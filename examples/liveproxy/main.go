// Live proxy: run the SG-9000-style filtering proxy over real sockets and
// exercise it with an HTTP client — allowed fetch, keyword denial, domain
// denial, targeted-page redirect, and a CONNECT tunnel — printing the Blue
// Coat log line each request produces.
//
//	go run ./examples/liveproxy
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/policy"
	"syriafilter/internal/proxysim"
)

func main() {
	// An origin server standing in for the open Internet.
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "content of %s", r.URL.Path)
	}))
	defer origin.Close()

	// The filtering proxy, logging every decision as a Blue Coat record.
	var sb strings.Builder
	logw := logfmt.NewWriter(&sb)
	srv := &proxysim.Server{
		Engine:      policy.Compile(policy.PaperRuleset()),
		SG:          42,
		RedirectURL: origin.URL + "/blocked-notice",
		LogFunc: func(rec *logfmt.Record) {
			_ = logw.Write(rec)
			_ = logw.Flush()
		},
	}
	proxy := httptest.NewServer(srv)
	defer proxy.Close()

	proxyURL, err := url.Parse(proxy.URL)
	if err != nil {
		log.Fatal(err)
	}
	client := &http.Client{
		Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)},
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}

	originHost := strings.TrimPrefix(origin.URL, "http://")
	demo := []struct {
		name string
		url  string
	}{
		{"ordinary page (allowed)", "http://" + originHost + "/news/today"},
		{"keyword 'proxy' in path (policy_denied)", "http://" + originHost + "/cgi/proxy.php?u=x"},
		{"blocked domain metacafe.com (policy_denied)", "http://www.metacafe.com/watch/42/"},
		{"blocked TLD .il (policy_denied)", "http://www.panet.co.il/"},
		{"targeted Facebook page (policy_redirect)", "http://www.facebook.com/Syrian.Revolution?ref=ts"},
		{"same page via ajax variant (slips through)", "http://www.facebook.com/Syrian.Revolution?ref=ts&__a=11&ajaxpipe=1&quickling[version]=414343%3B0"},
	}
	for _, dc := range demo {
		resp, err := client.Get(dc.url)
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		verdict := resp.Header.Get("X-Exception-Id")
		if verdict == "" {
			verdict = "allowed"
		}
		fmt.Printf("%-46s -> HTTP %d (%s)\n", dc.name, resp.StatusCode, verdict)
	}

	counts := srv.Counts()
	fmt.Printf("\nproxy counters: %d requests, %d censored (%d redirects)\n",
		counts.Total, counts.Censored, counts.Redirect)
	fmt.Println("\naccess log (Blue Coat 26-field format):")
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if len(line) > 120 {
			line = line[:117] + "..."
		}
		fmt.Println(" ", line)
	}
}
