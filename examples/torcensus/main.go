// Tor census: reproduce §7.1 — identify Tor traffic in the logs by joining
// against the relay consensus, split it into directory signaling (Torhttp)
// and OR-port traffic (Toronion), localize the blocking to proxy SG-44,
// and compute the Rfilter re-censoring consistency metric of Fig. 9.
//
//	go run ./examples/torcensus
package main

import (
	"fmt"
	"log"
	"time"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/report"
	"syriafilter/internal/synth"
)

func main() {
	gen, err := synth.New(synth.Config{Seed: 31, TotalRequests: 500_000})
	if err != nil {
		log.Fatal(err)
	}
	cluster := proxysim.NewCluster(proxysim.Config{
		Seed: 31, Engine: gen.Engine(), Consensus: gen.Consensus(),
	})
	analyzer := core.NewAnalyzer(core.Options{
		Categories: gen.CategoryDB(),
		Consensus:  gen.Consensus(),
	})

	var rec logfmt.Record
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		cluster.Process(&req, &rec)
		analyzer.Observe(&rec)
	}

	rep := analyzer.TorAnalysis()
	fmt.Printf("consensus relays: %d; contacted: %d\n", gen.Consensus().Len(), rep.Relays)
	fmt.Printf("Tor requests: %d (Torhttp %.1f%%, Toronion %.1f%%)\n",
		rep.Total, pct(rep.HTTP, rep.Total), pct(rep.Onion, rep.Total))
	fmt.Printf("censored: %d (%.2f%% of Tor traffic)\n", rep.Censored, pct(rep.Censored, rep.Total))
	for i, n := range rep.CensoredByProxy {
		if n > 0 {
			fmt.Printf("  SG-%d blocked %d (%.1f%% of censored Tor)\n", 42+i, n, pct(n, rep.Censored))
		}
	}

	aug := func(day, hour int) int64 {
		return time.Date(2011, 8, day, hour, 0, 0, 0, time.UTC).Unix()
	}
	hourly := analyzer.TorHourly(aug(1, 0), aug(7, 0))
	values := make([]float64, len(hourly))
	for i, h := range hourly {
		values[i] = float64(h.Total)
	}
	fmt.Println("\nTor requests per hour (Aug 1-6):")
	fmt.Println(report.Sparkline(values))

	pts := analyzer.RFilter(aug(1, 0), aug(7, 0))
	if pts == nil {
		fmt.Println("no censored relays observed")
		return
	}
	rf := make([]float64, len(pts))
	reallowed := 0
	for i, p := range pts {
		rf[i] = p.RFilter
		if p.AllowedSeen && p.RFilter < 1 {
			reallowed++
		}
	}
	fmt.Println("\nRfilter per hour (1.0 = every once-censored relay still blocked):")
	fmt.Println(report.Sparkline(rf))
	fmt.Printf("hours in which once-censored relays were allowed again: %d/%d\n", reallowed, len(pts))
	fmt.Println("\nThe alternation shows the same inconsistent, on/off Tor blocking the")
	fmt.Println("paper attributes to a testing phase confined to a single appliance.")
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
