// Quickstart: synthesize a small Syrian-2011 log corpus, filter it through
// the simulated Blue Coat cluster, and print the headline censorship
// statistics (the paper's Table 3 view).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/report"
	"syriafilter/internal/synth"
)

func main() {
	// 1. A deterministic workload calibrated to the paper's distributions.
	gen, err := synth.New(synth.Config{Seed: 2011, TotalRequests: 150_000})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The seven-proxy SG-9000 cluster enforcing the ground-truth policy.
	cluster := proxysim.NewCluster(proxysim.Config{
		Seed:      2011,
		Engine:    gen.Engine(),
		Consensus: gen.Consensus(),
	})

	// 3. The analysis layer consumes the resulting log records.
	analyzer := core.NewAnalyzer(core.Options{
		Categories: gen.CategoryDB(),
		Consensus:  gen.Consensus(),
	})

	var rec logfmt.Record
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		cluster.Process(&req, &rec)
		analyzer.Observe(&rec)
	}

	// 4. Headline numbers (compare with the paper: 93.25% allowed,
	// 0.98% censored, ~5.3% network errors, 0.47% cached).
	d := analyzer.Dataset(core.DFull)
	fmt.Printf("requests: %d\n", d.Total)
	fmt.Printf("allowed:  %s\n", report.Percent(float64(d.Allowed())/float64(d.Total)))
	fmt.Printf("censored: %s\n", report.Percent(float64(d.Censored())/float64(d.Total)))
	fmt.Printf("errors:   %s\n", report.Percent(float64(d.Errors())/float64(d.Total)))
	fmt.Printf("cached:   %s\n\n", report.Percent(float64(d.Proxied)/float64(d.Total)))

	allowed, censored := analyzer.TopDomains(5)
	tbl := report.NewTable("Top-5 domains", "Allowed", "#", "", "Censored", "#")
	for i := 0; i < 5; i++ {
		tbl.Row(allowed[i].Domain, allowed[i].Count, "", censored[i].Domain, censored[i].Count)
	}
	fmt.Print(tbl)
}
