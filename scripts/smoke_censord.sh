#!/usr/bin/env bash
# Smoke test for cmd/censord: synthesize a corpus with cmd/syngen (one
# file gzipped to exercise transparent decompression; the generator
# spreads record timestamps across the paper's capture window, so
# temporal queries are non-degenerate), boot the daemon on it, poll
# /readyz until the boot ingest completes, and diff the JSON of one
# table and one figure endpoint — plus /v1/range over the full window
# and a bucket-aligned sub-window — against `censorlyzer -json` over
# the same corpus — the two front ends must be byte-identical.
#
# Then the warm-restart path: SIGTERM the daemon (cutting a final
# checkpoint after flushing acked ingest), restart it from -checkpoint
# alone (no -input), and diff every /v1/tables/{id} against the
# pre-kill snapshot. /metrics is scraped on both sides of the restart:
# the ingest/HTTP/checkpoint series must be present, and the
# store-record total and checkpoint generation must carry across the
# restart monotonically.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED=7
REQUESTS=20000
ADDR=127.0.0.1:8077

# wait_ready polls /readyz until the daemon reports ok. The listener is
# up (and /healthz answers) while the boot goroutine is still restoring
# or ingesting, so query assertions must gate on readiness, not liveness.
wait_ready() { # $1 = pid, $2 = what
  for i in $(seq 1 150); do
    if curl -sf "http://$ADDR/readyz" > /dev/null 2>&1; then
      return 0
    fi
    if ! kill -0 "$1" 2>/dev/null; then
      echo "smoke: $2 exited early" >&2
      exit 1
    fi
    sleep 0.2
  done
  echo "smoke: $2 never became ready" >&2
  exit 1
}

# mval extracts one sample value from a Prometheus exposition dump.
mval() { # $1 = file, $2 = series name
  awk -v s="$2" '$1 == s { print $2; exit }' "$1"
}

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/syngen" ./cmd/syngen
go build -o "$tmp/censord" ./cmd/censord
go build -o "$tmp/censorlyzer" ./cmd/censorlyzer

"$tmp/syngen" -requests "$REQUESTS" -seed "$SEED" -out "$tmp/logs" -quiet
gzip "$tmp/logs/sg-42.csv"   # the daemon must ingest gz transparently
inputs=$(ls "$tmp"/logs/* | paste -sd, -)

"$tmp/censorlyzer" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -exp table4 -json > "$tmp/batch-table4.json"
"$tmp/censorlyzer" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -exp fig7 -json > "$tmp/batch-fig7.json"
# Bucket-aligned sub-window: the -from/-to record predicate must agree
# with the daemon's bucket merge over the same bounds.
SUBFROM=2011-08-03 SUBTO=2011-08-05
"$tmp/censorlyzer" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -exp table4 -json -from "$SUBFROM" -to "$SUBTO" > "$tmp/batch-table4-sub.json"

CKPT="$tmp/ckpt"
"$tmp/censord" -addr "$ADDR" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -bucket 1h -snapshot-every 0 -checkpoint "$CKPT" &
pid=$!

wait_ready "$pid" "censord"
curl -sf "http://$ADDR/healthz" > "$tmp/health.json"
grep -q '"status":"ok"' "$tmp/health.json" || { echo "smoke: bad /healthz: $(cat "$tmp/health.json")" >&2; exit 1; }
curl -sf "http://$ADDR/readyz" | grep -q '"status":"ok"' || { echo "smoke: /readyz not ok after wait" >&2; exit 1; }

curl -sf -X POST "http://$ADDR/v1/snapshot" > /dev/null
curl -sf "http://$ADDR/v1/tables/table4" > "$tmp/live-table4.json"
curl -sf "http://$ADDR/v1/figures/7"     > "$tmp/live-fig7.json"

diff "$tmp/batch-table4.json" "$tmp/live-table4.json"
diff "$tmp/batch-fig7.json" "$tmp/live-fig7.json"

# Range queries: the full (open) window is byte-identical to the batch
# run; a bucket-aligned sub-window matches the -from/-to batch run; a
# step query returns one doc per day window.
curl -sf "http://$ADDR/v1/range/table4" > "$tmp/range-table4.json"
diff "$tmp/batch-table4.json" "$tmp/range-table4.json"
curl -sf "http://$ADDR/v1/range/table4?from=$SUBFROM&to=$SUBTO" > "$tmp/range-table4-sub.json"
diff "$tmp/batch-table4-sub.json" "$tmp/range-table4-sub.json"
curl -sf "http://$ADDR/v1/range/table1?step=24h" > "$tmp/series.json"
grep -q '"step_seconds":86400' "$tmp/series.json" || { echo "smoke: bad series: $(head -c 200 "$tmp/series.json")" >&2; exit 1; }
windows=$(grep -o '"from_unix"' "$tmp/series.json" | wc -l)
[ "$windows" -ge 2 ] || { echo "smoke: series has $windows windows, want >= 2" >&2; exit 1; }
curl -sf "http://$ADDR/v1/stats" | grep -q '"ingested_bytes":[1-9]' || { echo "smoke: /v1/stats missing ingested_bytes" >&2; exit 1; }

# The ingest endpoint accepts a live batch and the snapshot moves.
before=$(curl -sf "http://$ADDR/v1/stats" | sed 's/.*"ingested"://;s/,.*//')
"$tmp/syngen" -requests 10000 -seed 9 -combined "$tmp/extra.csv" -quiet
curl -sf -X POST --data-binary @"$tmp/extra.csv" "http://$ADDR/v1/ingest?refresh=1" > "$tmp/ingest.json"
after=$(curl -sf "http://$ADDR/v1/stats" | sed 's/.*"ingested"://;s/,.*//')
[ "$after" -gt "$before" ] || { echo "smoke: ingest did not grow the store ($before -> $after)" >&2; exit 1; }

echo "smoke: censord serves batch-identical JSON and accepts live ingest ($before -> $after records)"

# --- observability: /metrics covers ingest, HTTP and checkpoint ---

curl -sf "http://$ADDR/metrics" > "$tmp/metrics-prekill.txt"
for series in censord_ingest_blocks_total censord_ingest_records_total \
              censord_ingest_bytes_total censord_store_records_total \
              censord_snapshot_cuts_total censord_timewin_live_buckets \
              censord_checkpoint_generation go_goroutines; do
  [ -n "$(mval "$tmp/metrics-prekill.txt" "$series")" ] \
    || { echo "smoke: /metrics missing $series" >&2; exit 1; }
done
grep -q '^http_requests_total{' "$tmp/metrics-prekill.txt" \
  || { echo "smoke: /metrics missing http_requests_total" >&2; exit 1; }
grep -q '^censord_shard_queue_depth{' "$tmp/metrics-prekill.txt" \
  || { echo "smoke: /metrics missing censord_shard_queue_depth" >&2; exit 1; }
pre_records=$(mval "$tmp/metrics-prekill.txt" censord_store_records_total)
pre_gen=$(mval "$tmp/metrics-prekill.txt" censord_checkpoint_generation)
awk -v n="$pre_records" -v want="$after" 'BEGIN { exit !(n == want) }' \
  || { echo "smoke: censord_store_records_total $pre_records != /v1/stats ingested $after" >&2; exit 1; }

echo "smoke: /metrics exposes ingest, HTTP and checkpoint series ($pre_records records)"

# --- warm restart: kill mid-run, restart from the checkpoint alone ---

TABLES="1 3 4 5 6 7 8 9 10 11 12 13 14 15"
mkdir -p "$tmp/prekill"
for id in $TABLES; do
  curl -sf "http://$ADDR/v1/tables/$id" > "$tmp/prekill/table$id.json"
done
prestats=$(curl -sf "http://$ADDR/v1/stats")
echo "$prestats" | grep -q '"uptime_s"' || { echo "smoke: /v1/stats missing uptime_s" >&2; exit 1; }
echo "$prestats" | grep -q '"snapshot_age_s"' || { echo "smoke: /v1/stats missing snapshot_age_s" >&2; exit 1; }
echo "$prestats" | grep -q '"checkpoint_age_s"' || { echo "smoke: /v1/stats missing checkpoint_age_s" >&2; exit 1; }

# Graceful shutdown cuts the final checkpoint (covering the live-ingested
# batch above, which was acked over POST /v1/ingest).
kill -TERM "$pid"
for i in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$pid" 2>/dev/null; then
  echo "smoke: censord did not exit after SIGTERM" >&2
  exit 1
fi
pid=""
[ -f "$CKPT/MANIFEST.json" ] || { echo "smoke: no checkpoint manifest after shutdown" >&2; exit 1; }

# Restart from state alone: no -input, the checkpoint carries everything.
"$tmp/censord" -addr "$ADDR" -seed "$SEED" -requests "$REQUESTS" \
  -bucket 1h -snapshot-every 0 -checkpoint "$CKPT" &
pid=$!
wait_ready "$pid" "restarted censord"
curl -sf -X POST "http://$ADDR/v1/snapshot" > /dev/null
for id in $TABLES; do
  curl -sf "http://$ADDR/v1/tables/$id" > "$tmp/postkill-table$id.json"
  diff "$tmp/prekill/table$id.json" "$tmp/postkill-table$id.json" \
    || { echo "smoke: table$id differs after warm restart" >&2; exit 1; }
done
restored=$(curl -sf "http://$ADDR/v1/stats" | sed 's/.*"ingested"://;s/,.*//')
[ "$restored" -eq "$after" ] || { echo "smoke: restored $restored records, expected $after" >&2; exit 1; }

# Metrics survive the warm restart monotonically: the record total picks
# up where the checkpoint left it (CounterFunc over restored state, not
# a process-lifetime counter) and the SIGTERM checkpoint advanced the
# generation the restarted daemon now reports.
curl -sf "http://$ADDR/metrics" > "$tmp/metrics-postkill.txt"
post_records=$(mval "$tmp/metrics-postkill.txt" censord_store_records_total)
post_gen=$(mval "$tmp/metrics-postkill.txt" censord_checkpoint_generation)
restores=$(mval "$tmp/metrics-postkill.txt" censord_checkpoint_restores_total)
awk -v a="$post_records" -v b="$pre_records" 'BEGIN { exit !(a >= b && a == b) }' \
  || { echo "smoke: store_records_total regressed across restart ($pre_records -> $post_records)" >&2; exit 1; }
awk -v a="$post_gen" -v b="$pre_gen" 'BEGIN { exit !(a > b) }' \
  || { echo "smoke: checkpoint_generation not advanced across restart ($pre_gen -> $post_gen)" >&2; exit 1; }
awk -v n="$restores" 'BEGIN { exit !(n == 1) }' \
  || { echo "smoke: checkpoint_restores_total = $restores, want 1" >&2; exit 1; }

echo "smoke: warm restart serves byte-identical tables from the checkpoint ($restored records, metrics monotone gen $pre_gen -> $post_gen)"

# --- sketch mode: checkpoint -> SIGTERM -> warm restart, estimates survive ---
#
# Same drill with -sketch: boot a sketch-mode daemon on the corpus,
# capture every table (including the approx-marked sketched ones), cut
# a checkpoint via SIGTERM, restart from the checkpoint alone, and
# require every table byte-identical — HLL registers and top-k entries
# must round-trip exactly, not just approximately.
kill -TERM "$pid"
for i in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
pid=""

SKCKPT="$tmp/ckpt-sketch"
"$tmp/censord" -addr "$ADDR" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -bucket 1h -snapshot-every 0 -checkpoint "$SKCKPT" -sketch &
pid=$!
wait_ready "$pid" "sketch censord"
curl -sf -X POST "http://$ADDR/v1/snapshot" > /dev/null
mkdir -p "$tmp/sketch-prekill"
for id in $TABLES; do
  curl -sf "http://$ADDR/v1/tables/$id" > "$tmp/sketch-prekill/table$id.json"
done
# Sketched experiments carry the approx marker; exact ones must not.
grep -q '"approx":true' "$tmp/sketch-prekill/table4.json" \
  || { echo "smoke: sketch-mode table4 not marked approx" >&2; exit 1; }
if grep -q '"approx"' "$tmp/sketch-prekill/table1.json"; then
  echo "smoke: exact-module table1 marked approx in sketch mode" >&2; exit 1
fi
# Exact-module results are byte-identical to the exact daemon's.
diff "$tmp/batch-fig7.json" <(curl -sf "http://$ADDR/v1/figures/7") \
  || { echo "smoke: sketch mode perturbed the exact fig7" >&2; exit 1; }
# A sketched engine reports nonzero sketch footprint on /metrics.
curl -sf "http://$ADDR/metrics" > "$tmp/metrics-sketch.txt"
hlls=$(mval "$tmp/metrics-sketch.txt" 'censord_sketch_hlls{module="users"}')
awk -v n="$hlls" 'BEGIN { exit !(n > 0) }' \
  || { echo "smoke: sketch mode censord_sketch_hlls{module=\"users\"} = $hlls, want > 0" >&2; exit 1; }

kill -TERM "$pid"
for i in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
pid=""
[ -f "$SKCKPT/MANIFEST.json" ] || { echo "smoke: no sketch checkpoint manifest" >&2; exit 1; }

"$tmp/censord" -addr "$ADDR" -seed "$SEED" -requests "$REQUESTS" \
  -bucket 1h -snapshot-every 0 -checkpoint "$SKCKPT" -sketch &
pid=$!
wait_ready "$pid" "restarted sketch censord"
curl -sf -X POST "http://$ADDR/v1/snapshot" > /dev/null
for id in $TABLES; do
  curl -sf "http://$ADDR/v1/tables/$id" > "$tmp/sketch-postkill-table$id.json"
  diff "$tmp/sketch-prekill/table$id.json" "$tmp/sketch-postkill-table$id.json" \
    || { echo "smoke: sketch table$id differs after warm restart" >&2; exit 1; }
done

echo "smoke: sketch-mode warm restart serves byte-identical estimates from the checkpoint"
