#!/usr/bin/env bash
# Smoke test for cmd/censord: synthesize a corpus with cmd/syngen (one
# file gzipped to exercise transparent decompression; the generator
# spreads record timestamps across the paper's capture window, so
# temporal queries are non-degenerate), boot the daemon on it, poll
# /healthz, and diff the JSON of one table and one figure endpoint —
# plus /v1/range over the full window and a bucket-aligned sub-window —
# against `censorlyzer -json` over the same corpus — the two front ends
# must be byte-identical.
#
# Then the warm-restart path: SIGTERM the daemon (cutting a final
# checkpoint after flushing acked ingest), restart it from -checkpoint
# alone (no -input), and diff every /v1/tables/{id} against the
# pre-kill snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED=7
REQUESTS=20000
ADDR=127.0.0.1:8077

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/syngen" ./cmd/syngen
go build -o "$tmp/censord" ./cmd/censord
go build -o "$tmp/censorlyzer" ./cmd/censorlyzer

"$tmp/syngen" -requests "$REQUESTS" -seed "$SEED" -out "$tmp/logs" -quiet
gzip "$tmp/logs/sg-42.csv"   # the daemon must ingest gz transparently
inputs=$(ls "$tmp"/logs/* | paste -sd, -)

"$tmp/censorlyzer" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -exp table4 -json > "$tmp/batch-table4.json"
"$tmp/censorlyzer" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -exp fig7 -json > "$tmp/batch-fig7.json"
# Bucket-aligned sub-window: the -from/-to record predicate must agree
# with the daemon's bucket merge over the same bounds.
SUBFROM=2011-08-03 SUBTO=2011-08-05
"$tmp/censorlyzer" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -exp table4 -json -from "$SUBFROM" -to "$SUBTO" > "$tmp/batch-table4-sub.json"

CKPT="$tmp/ckpt"
"$tmp/censord" -addr "$ADDR" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -bucket 1h -snapshot-every 0 -checkpoint "$CKPT" &
pid=$!

for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" > "$tmp/health.json" 2>/dev/null; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "smoke: censord exited early" >&2
    exit 1
  fi
  sleep 0.2
done
grep -q '"status":"ok"' "$tmp/health.json" || { echo "smoke: bad /healthz: $(cat "$tmp/health.json")" >&2; exit 1; }

curl -sf -X POST "http://$ADDR/v1/snapshot" > /dev/null
curl -sf "http://$ADDR/v1/tables/table4" > "$tmp/live-table4.json"
curl -sf "http://$ADDR/v1/figures/7"     > "$tmp/live-fig7.json"

diff "$tmp/batch-table4.json" "$tmp/live-table4.json"
diff "$tmp/batch-fig7.json" "$tmp/live-fig7.json"

# Range queries: the full (open) window is byte-identical to the batch
# run; a bucket-aligned sub-window matches the -from/-to batch run; a
# step query returns one doc per day window.
curl -sf "http://$ADDR/v1/range/table4" > "$tmp/range-table4.json"
diff "$tmp/batch-table4.json" "$tmp/range-table4.json"
curl -sf "http://$ADDR/v1/range/table4?from=$SUBFROM&to=$SUBTO" > "$tmp/range-table4-sub.json"
diff "$tmp/batch-table4-sub.json" "$tmp/range-table4-sub.json"
curl -sf "http://$ADDR/v1/range/table1?step=24h" > "$tmp/series.json"
grep -q '"step_seconds":86400' "$tmp/series.json" || { echo "smoke: bad series: $(head -c 200 "$tmp/series.json")" >&2; exit 1; }
windows=$(grep -o '"from_unix"' "$tmp/series.json" | wc -l)
[ "$windows" -ge 2 ] || { echo "smoke: series has $windows windows, want >= 2" >&2; exit 1; }
curl -sf "http://$ADDR/v1/stats" | grep -q '"ingested_bytes":[1-9]' || { echo "smoke: /v1/stats missing ingested_bytes" >&2; exit 1; }

# The ingest endpoint accepts a live batch and the snapshot moves.
before=$(curl -sf "http://$ADDR/v1/stats" | sed 's/.*"ingested"://;s/,.*//')
"$tmp/syngen" -requests 10000 -seed 9 -combined "$tmp/extra.csv" -quiet
curl -sf -X POST --data-binary @"$tmp/extra.csv" "http://$ADDR/v1/ingest?refresh=1" > "$tmp/ingest.json"
after=$(curl -sf "http://$ADDR/v1/stats" | sed 's/.*"ingested"://;s/,.*//')
[ "$after" -gt "$before" ] || { echo "smoke: ingest did not grow the store ($before -> $after)" >&2; exit 1; }

echo "smoke: censord serves batch-identical JSON and accepts live ingest ($before -> $after records)"

# --- warm restart: kill mid-run, restart from the checkpoint alone ---

TABLES="1 3 4 5 6 7 8 9 10 11 12 13 14 15"
mkdir -p "$tmp/prekill"
for id in $TABLES; do
  curl -sf "http://$ADDR/v1/tables/$id" > "$tmp/prekill/table$id.json"
done
prestats=$(curl -sf "http://$ADDR/v1/stats")
echo "$prestats" | grep -q '"uptime_s"' || { echo "smoke: /v1/stats missing uptime_s" >&2; exit 1; }
echo "$prestats" | grep -q '"snapshot_age_s"' || { echo "smoke: /v1/stats missing snapshot_age_s" >&2; exit 1; }
echo "$prestats" | grep -q '"checkpoint_age_s"' || { echo "smoke: /v1/stats missing checkpoint_age_s" >&2; exit 1; }

# Graceful shutdown cuts the final checkpoint (covering the live-ingested
# batch above, which was acked over POST /v1/ingest).
kill -TERM "$pid"
for i in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$pid" 2>/dev/null; then
  echo "smoke: censord did not exit after SIGTERM" >&2
  exit 1
fi
pid=""
[ -f "$CKPT/MANIFEST.json" ] || { echo "smoke: no checkpoint manifest after shutdown" >&2; exit 1; }

# Restart from state alone: no -input, the checkpoint carries everything.
"$tmp/censord" -addr "$ADDR" -seed "$SEED" -requests "$REQUESTS" \
  -bucket 1h -snapshot-every 0 -checkpoint "$CKPT" &
pid=$!
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "smoke: restarted censord exited early" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf -X POST "http://$ADDR/v1/snapshot" > /dev/null
for id in $TABLES; do
  curl -sf "http://$ADDR/v1/tables/$id" > "$tmp/postkill-table$id.json"
  diff "$tmp/prekill/table$id.json" "$tmp/postkill-table$id.json" \
    || { echo "smoke: table$id differs after warm restart" >&2; exit 1; }
done
restored=$(curl -sf "http://$ADDR/v1/stats" | sed 's/.*"ingested"://;s/,.*//')
[ "$restored" -eq "$after" ] || { echo "smoke: restored $restored records, expected $after" >&2; exit 1; }

echo "smoke: warm restart serves byte-identical tables from the checkpoint ($restored records)"

# --- sketch mode: checkpoint -> SIGTERM -> warm restart, estimates survive ---
#
# Same drill with -sketch: boot a sketch-mode daemon on the corpus,
# capture every table (including the approx-marked sketched ones), cut
# a checkpoint via SIGTERM, restart from the checkpoint alone, and
# require every table byte-identical — HLL registers and top-k entries
# must round-trip exactly, not just approximately.
kill -TERM "$pid"
for i in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
pid=""

SKCKPT="$tmp/ckpt-sketch"
"$tmp/censord" -addr "$ADDR" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -bucket 1h -snapshot-every 0 -checkpoint "$SKCKPT" -sketch &
pid=$!
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "smoke: sketch censord exited early" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf -X POST "http://$ADDR/v1/snapshot" > /dev/null
mkdir -p "$tmp/sketch-prekill"
for id in $TABLES; do
  curl -sf "http://$ADDR/v1/tables/$id" > "$tmp/sketch-prekill/table$id.json"
done
# Sketched experiments carry the approx marker; exact ones must not.
grep -q '"approx":true' "$tmp/sketch-prekill/table4.json" \
  || { echo "smoke: sketch-mode table4 not marked approx" >&2; exit 1; }
if grep -q '"approx"' "$tmp/sketch-prekill/table1.json"; then
  echo "smoke: exact-module table1 marked approx in sketch mode" >&2; exit 1
fi
# Exact-module results are byte-identical to the exact daemon's.
diff "$tmp/batch-fig7.json" <(curl -sf "http://$ADDR/v1/figures/7") \
  || { echo "smoke: sketch mode perturbed the exact fig7" >&2; exit 1; }

kill -TERM "$pid"
for i in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.2
done
pid=""
[ -f "$SKCKPT/MANIFEST.json" ] || { echo "smoke: no sketch checkpoint manifest" >&2; exit 1; }

"$tmp/censord" -addr "$ADDR" -seed "$SEED" -requests "$REQUESTS" \
  -bucket 1h -snapshot-every 0 -checkpoint "$SKCKPT" -sketch &
pid=$!
for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "smoke: restarted sketch censord exited early" >&2
    exit 1
  fi
  sleep 0.2
done
curl -sf -X POST "http://$ADDR/v1/snapshot" > /dev/null
for id in $TABLES; do
  curl -sf "http://$ADDR/v1/tables/$id" > "$tmp/sketch-postkill-table$id.json"
  diff "$tmp/sketch-prekill/table$id.json" "$tmp/sketch-postkill-table$id.json" \
    || { echo "smoke: sketch table$id differs after warm restart" >&2; exit 1; }
done

echo "smoke: sketch-mode warm restart serves byte-identical estimates from the checkpoint"
