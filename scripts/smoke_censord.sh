#!/usr/bin/env bash
# Smoke test for cmd/censord: synthesize a corpus with cmd/syngen (one
# file gzipped to exercise transparent decompression), boot the daemon on
# it, poll /healthz, and diff the JSON of one table and one figure
# endpoint against `censorlyzer -json` over the same corpus — the two
# front ends must be byte-identical.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED=7
REQUESTS=20000
ADDR=127.0.0.1:8077

tmp=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/syngen" ./cmd/syngen
go build -o "$tmp/censord" ./cmd/censord
go build -o "$tmp/censorlyzer" ./cmd/censorlyzer

"$tmp/syngen" -requests "$REQUESTS" -seed "$SEED" -out "$tmp/logs" -quiet
gzip "$tmp/logs/sg-42.csv"   # the daemon must ingest gz transparently
inputs=$(ls "$tmp"/logs/* | paste -sd, -)

"$tmp/censorlyzer" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -exp table4 -json > "$tmp/batch-table4.json"
"$tmp/censorlyzer" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -exp fig7 -json > "$tmp/batch-fig7.json"

"$tmp/censord" -addr "$ADDR" -input "$inputs" -seed "$SEED" -requests "$REQUESTS" \
  -snapshot-every 0 &
pid=$!

for i in $(seq 1 50); do
  if curl -sf "http://$ADDR/healthz" > "$tmp/health.json" 2>/dev/null; then
    break
  fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "smoke: censord exited early" >&2
    exit 1
  fi
  sleep 0.2
done
grep -q '"status":"ok"' "$tmp/health.json" || { echo "smoke: bad /healthz: $(cat "$tmp/health.json")" >&2; exit 1; }

curl -sf -X POST "http://$ADDR/v1/snapshot" > /dev/null
curl -sf "http://$ADDR/v1/tables/table4" > "$tmp/live-table4.json"
curl -sf "http://$ADDR/v1/figures/7"     > "$tmp/live-fig7.json"

diff "$tmp/batch-table4.json" "$tmp/live-table4.json"
diff "$tmp/batch-fig7.json" "$tmp/live-fig7.json"

# The ingest endpoint accepts a live batch and the snapshot moves.
before=$(curl -sf "http://$ADDR/v1/stats" | sed 's/.*"ingested"://;s/,.*//')
"$tmp/syngen" -requests 10000 -seed 9 -combined "$tmp/extra.csv" -quiet
curl -sf -X POST --data-binary @"$tmp/extra.csv" "http://$ADDR/v1/ingest?refresh=1" > "$tmp/ingest.json"
after=$(curl -sf "http://$ADDR/v1/stats" | sed 's/.*"ingested"://;s/,.*//')
[ "$after" -gt "$before" ] || { echo "smoke: ingest did not grow the store ($before -> $after)" >&2; exit 1; }

echo "smoke: censord serves batch-identical JSON and accepts live ingest ($before -> $after records)"
