#!/usr/bin/env bash
# Runs the per-table/per-figure benchmark suite (each artifact produced
# end to end on its subset engine, plus the full-engine baseline) and
# writes the results as JSON to BENCH_core.json, so the performance
# trajectory is tracked across PRs.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT=BENCH_core.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'BenchmarkTable|BenchmarkFig|BenchmarkHTTPS|BenchmarkBitTorrent|BenchmarkGoogleCache|BenchmarkAnalyzerObserve|BenchmarkIngestEndToEnd|BenchmarkRangeQuery|BenchmarkCheckpoint' \
  -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

# Convert `go test -bench` lines into a JSON array.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ {
  name = $1; sub(/-[0-9]+$/, "", name)
  iters = $2; nsop = $3
  bytes = "null"; allocs = "null"; mbs = "null"
  for (i = 4; i <= NF; i++) {
    if ($(i+1) == "MB/s")      mbs = $i
    if ($(i+1) == "B/op")      bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                 name, iters, nsop, mbs, bytes, allocs)
  rows[n++] = line
}
END {
  print "{"
  printf "  \"date\": \"%s\",\n", date
  printf "  \"benchtime\": \"'"$BENCHTIME"'\",\n"
  print "  \"benchmarks\": ["
  for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n-1 ? "," : "")
  print "  ]"
  print "}"
}' "$RAW" > "$OUT"

echo "wrote $OUT"
