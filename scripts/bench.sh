#!/usr/bin/env bash
# Runs the per-table/per-figure benchmark suite (each artifact produced
# end to end on its subset engine, plus the full-engine baseline) and
# writes the results as JSON to BENCH_core.json, so the performance
# trajectory is tracked across PRs.
#
# The ingest path is additionally rerun pinned to -cpu 1,4 so the file
# records both scaling points; those rows are named ".../cpu=N". The cpu
# count must be folded into the recorded name because `go test` prints
# the same benchmark name for every -cpu value (bar a "-N" suffix that
# is omitted at GOMAXPROCS=1), which would otherwise collide the rows.
#
# Also runs the closed-loop censord load smoke (test/e2e) against a
# real daemon and writes its ingest-rate and query-latency figures to
# BENCH_serve.json. SERVE_DURATION and SERVE_TARGET_MB tune it.
#
# Usage: scripts/bench.sh [benchtime]   (default 3x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-3x}"
OUT=BENCH_core.json
RAW=$(mktemp)
RAWCPU=$(mktemp)
trap 'rm -f "$RAW" "$RAWCPU"' EXIT

# Every result file is stamped with the VCS revision it measured and a
# UTC timestamp, so a regression hunt can line numbers up with commits.
REV=$(git rev-parse HEAD 2>/dev/null || echo unknown)
NOW=$(date -u +%Y-%m-%dT%H:%M:%SZ)

go test -run '^$' \
  -bench 'BenchmarkTable|BenchmarkFig|BenchmarkHTTPS|BenchmarkBitTorrent|BenchmarkGoogleCache|BenchmarkAnalyzerObserve|BenchmarkIngestEndToEnd|BenchmarkRangeQuery|BenchmarkCheckpoint|BenchmarkObsOverhead|BenchmarkTraceOverhead|BenchmarkDocCache' \
  -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

go test -run '^$' -bench 'BenchmarkIngestEndToEnd' -cpu 1,4 \
  -benchtime "$BENCHTIME" -benchmem . | tee "$RAWCPU"

# Convert `go test -bench` lines into one JSON array: the main run with
# the "-N" GOMAXPROCS suffix stripped, the -cpu rerun named ".../cpu=N".
awk -v date="$NOW" -v rev="$REV" -v benchtime="$BENCHTIME" '
function record(name,    i, bytes, allocs, mbs) {
  bytes = "null"; allocs = "null"; mbs = "null"
  for (i = 4; i <= NF; i++) {
    if ($(i+1) == "MB/s")      mbs = $i
    if ($(i+1) == "B/op")      bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  rows[n++] = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                      name, $2, $3, mbs, bytes, allocs)
}
FNR == 1 { fileno++ }
!/^Benchmark/ { next }
fileno == 1 {
  name = $1; sub(/-[0-9]+$/, "", name)
  record(name)
  next
}
{
  # -cpu rerun: recover the cpu count from the suffix (absent at 1).
  cpu = 1
  name = $1
  if (match(name, /-[0-9]+$/)) {
    cpu = substr(name, RSTART + 1)
    name = substr(name, 1, RSTART - 1)
  }
  record(name "/cpu=" cpu)
}
END {
  print "{"
  printf "  \"date\": \"%s\",\n", date
  printf "  \"recorded_at\": \"%s\",\n", date
  printf "  \"vcs_revision\": \"%s\",\n", rev
  printf "  \"benchtime\": \"%s\",\n", benchtime
  print "  \"benchmarks\": ["
  for (i = 0; i < n; i++) printf "  %s%s\n", rows[i], (i < n-1 ? "," : "")
  print "  ]"
  print "}"
}' "$RAW" "$RAWCPU" > "$OUT"

echo "wrote $OUT"

# Serving-path load smoke: a real censord under closed-loop ingest +
# concurrent query load, figures read from its own /metrics.
SERVE_DURATION="${SERVE_DURATION:-5s}"
SERVE_TARGET_MB="${SERVE_TARGET_MB:-16}"
go test ./test/e2e -run TestLoadSmoke \
  -load.duration "$SERVE_DURATION" -load.target-mb "$SERVE_TARGET_MB" \
  -load.revision "$REV" \
  -load.out "$(pwd)/BENCH_serve.json" -v
